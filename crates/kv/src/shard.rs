//! One cache shard: real byte storage + a PAMA policy instance for
//! memory accounting and eviction decisions, plus the live penalty
//! probe (the paper's GET-miss→SET estimator running online).
//!
//! Concurrency model (see DESIGN.md): the mutable state lives in
//! [`Shard`] behind a [`ShardCell`]'s `RwLock`. A cache-hit GET runs
//! entirely under the *shared* read lock — hash lookup, key
//! verification, TTL check, value clone — and records the hit in the
//! cell's lock-free [`AccessLog`] instead of promoting the entry
//! inline. Every path that takes the write lock (SET, DELETE, a GET
//! miss, TTL sweeps, explicit flush) drains the log first, so deferred
//! promotions are applied in recorded order before any state change.
//! The read path itself never drains: applying a deferred hit to the
//! policy costs as much as the inline promotion it replaced, so a
//! reader-side drain would hand the saved cost right back. Instead the
//! ring drops (and counts) hits once full — bounded-staleness recency:
//! eviction and allocation decisions only happen under the write lock,
//! and by the time one runs, every hit recorded before it (up to ring
//! capacity) has been applied in order. In a single-threaded sequence
//! whose read bursts fit the ring, the drained promotions land in
//! exactly the order and counts the old lock-everything design
//! produced.

use crate::log::AccessLog;
use crate::stats::ShardCounters;
use bytes::Bytes;
use pama_core::config::{CacheConfig, Tick};
use pama_core::policy::{Pama, PamaConfig, Policy};
use pama_faults::BackendSim;
use pama_trace::penalty::{DEFAULT_PENALTY, PENALTY_CAP};
use pama_trace::Request;
use pama_util::{FastMap, SimDuration, SimTime};
use parking_lot::RwLock;

/// Capacity of each shard's deferred-hit ring: the most promotions the
/// policy can owe between two write-lock events. A full drain of this
/// size costs tens of microseconds — long enough to amortize the write
/// lock, short enough not to stall the writer that triggers it.
const ACCESS_LOG_CAPACITY: usize = 4096;

/// A stored entry: the full key (for collision rejection), the value,
/// and the expiry, if any.
#[derive(Debug, Clone)]
struct Entry {
    key: Bytes,
    value: Bytes,
    expires: Option<SimTime>,
}

/// An open penalty-probe window: the key missed at `miss_at`; a `set`
/// arriving before the cap closes the window and records the gap as
/// the key's regeneration penalty.
#[derive(Debug, Clone, Copy)]
struct Probe {
    miss_at: SimTime,
}

/// Live per-key penalty knowledge: how many penalties have been
/// measured and their running mean. The same numbers appear in
/// [`crate::CacheStats`] as `measured_penalties` /
/// `mean_measured_penalty_us`; this type names them for diagnostics.
#[derive(Debug, Default, Clone)]
pub struct LivePenaltyProbe {
    /// Number of measured (miss→set) samples.
    pub samples: u64,
    /// Mean measured penalty in microseconds.
    pub mean_us: f64,
}

/// What an immutable lookup found (drives the lock-upgrade decision).
enum EntryState {
    /// Present, key matches, not expired.
    Live,
    /// Present and key matches but past its TTL: needs a write lock to
    /// drop.
    Expired,
    /// Absent, or a hash collision with a different key.
    Absent,
}

pub(crate) struct Shard {
    policy: Pama,
    entries: FastMap<u64, Entry>,
    estimates: FastMap<u64, SimDuration>,
    probes: FastMap<u64, Probe>,
    serial: u64,
    /// Optional simulated backing store. When present, every GET miss
    /// drives a fetch through it — retries, timeouts, and outages
    /// included — and a successful fetch's latency becomes the key's
    /// penalty estimate (ground truth observed, not probed).
    backend: Option<BackendSim>,
}

impl Shard {
    pub fn new(mut cfg: CacheConfig, pama: PamaConfig) -> Self {
        // Pre-size the maps from slab geometry: the shard can never
        // hold more items than total_bytes / min_slot, so reserving
        // that up front avoids rehash storms during warm-up. Capped so
        // a huge shard doesn't pay for pathological pre-allocation.
        let max_items = (cfg.total_bytes / cfg.min_slot.max(1)).min(1 << 18) as usize;
        // The shard drives inserts explicitly through `set`; the
        // policy must never phantom-fill on its own.
        cfg.demand_fill = false;
        Self {
            policy: Pama::with_config(cfg, pama),
            entries: FastMap::with_capacity_and_hasher(max_items, Default::default()),
            estimates: FastMap::with_capacity_and_hasher(max_items, Default::default()),
            probes: FastMap::with_capacity_and_hasher(max_items.min(4096), Default::default()),
            serial: 0,
            backend: None,
        }
    }

    pub fn with_backend(mut self, backend: BackendSim) -> Self {
        self.backend = Some(backend);
        self
    }

    fn tick(&mut self, now: SimTime) -> Tick {
        self.serial += 1;
        Tick { now, serial: self.serial }
    }

    /// The penalty to attribute to a key on insert.
    fn penalty_for(
        &mut self,
        h: u64,
        explicit: Option<SimDuration>,
        now: SimTime,
        c: &ShardCounters,
    ) -> SimDuration {
        if let Some(p) = explicit {
            return p.min(PENALTY_CAP);
        }
        if let Some(probe) = self.probes.remove(&h) {
            let gap = now.saturating_since(probe.miss_at);
            if gap <= PENALTY_CAP && gap > SimDuration::ZERO {
                ShardCounters::bump(&c.penalty_samples);
                ShardCounters::add(&c.penalty_sum_us, gap.as_micros());
                self.estimates.insert(h, gap);
                return gap;
            }
        }
        self.estimates.get(&h).copied().unwrap_or(DEFAULT_PENALTY)
    }

    fn expired(e: &Entry, now: SimTime) -> bool {
        e.expires.is_some_and(|t| now >= t)
    }

    /// Drops an entry from both the store and the policy bookkeeping.
    fn drop_entry(&mut self, h: u64, now: SimTime, c: &ShardCounters) {
        if let Some(e) = self.entries.remove(&h) {
            ShardCounters::sub(&c.items, 1);
            ShardCounters::sub(&c.live_bytes, (e.key.len() + e.value.len()) as u64);
            let t = Tick { now, serial: self.serial };
            // Width of the delete request is irrelevant to removal.
            self.policy.on_delete(&Request::delete(now, h, 0), t);
        }
    }

    /// The shared-lock hit path: lookup, key check, TTL check, value
    /// clone. No mutation — recency bookkeeping is the caller's job
    /// (via the access log).
    pub fn read_hit(&self, h: u64, key: &[u8], now: SimTime) -> Option<Bytes> {
        match self.entries.get(&h) {
            Some(e) if e.key.as_ref() == key && !Self::expired(e, now) => Some(e.value.clone()),
            _ => None,
        }
    }

    /// Immutable classification of a key's state (for `contains`).
    fn entry_state(&self, h: u64, key: &[u8], now: SimTime) -> EntryState {
        match self.entries.get(&h) {
            Some(e) if e.key.as_ref() == key && !Self::expired(e, now) => EntryState::Live,
            Some(e) if e.key.as_ref() == key => EntryState::Expired,
            _ => EntryState::Absent,
        }
    }

    /// Drops the entry if it is still the same key and expired (the
    /// state may have changed between a read-lock check and the write
    /// lock this runs under).
    fn expire_if_dead(&mut self, h: u64, key: &[u8], now: SimTime, c: &ShardCounters) {
        if let Some(e) = self.entries.get(&h) {
            if e.key.as_ref() == key && Self::expired(e, now) {
                self.drop_entry(h, now, c);
            }
        }
    }

    /// The write-lock GET: identical to the pre-concurrency design —
    /// a hit promotes inline through the policy; a miss (or collision
    /// or expiry) opens a penalty probe / drives the backend.
    pub fn get_locked(
        &mut self,
        h: u64,
        key: &[u8],
        now: SimTime,
        c: &ShardCounters,
    ) -> Option<Bytes> {
        let tick = self.tick(now);
        match self.entries.get(&h) {
            Some(e) if e.key.as_ref() == key && !Self::expired(e, now) => {
                let value = e.value.clone();
                // Keep the policy's recency bookkeeping in step. The
                // request's sizes mirror the stored entry.
                let req = Request::get(now, h, key.len() as u32, value.len() as u32);
                let out = self.policy.on_get(&req, tick);
                debug_assert!(out.hit, "policy lost a stored key");
                ShardCounters::bump(&c.hits);
                Some(value)
            }
            Some(_) => {
                // Hash collision with a different key, or expired: treat
                // as a miss and make room for the incoming generation.
                self.drop_entry(h, now, c);
                self.miss(h, now, c);
                None
            }
            None => {
                self.miss(h, now, c);
                None
            }
        }
    }

    fn miss(&mut self, h: u64, now: SimTime, c: &ShardCounters) {
        ShardCounters::bump(&c.misses);
        if let Some(backend) = self.backend.as_mut() {
            let out = backend.fetch(h, self.serial);
            ShardCounters::bump(&c.backend_fetches);
            ShardCounters::add(&c.backend_retries, u64::from(out.attempts.saturating_sub(1)));
            ShardCounters::add(&c.backend_time_us, out.latency.as_micros());
            if out.ok {
                // The fetch cost is the key's regeneration penalty,
                // observed directly — better than the probe's guess, so
                // no probe window opens (a wall-clock gap would shadow
                // the measured latency).
                let latency = out.latency.min(PENALTY_CAP);
                self.estimates.insert(h, latency);
                ShardCounters::bump(&c.penalty_samples);
                ShardCounters::add(&c.penalty_sum_us, latency.as_micros());
            } else {
                // Degraded miss: the backend could not serve. No probe
                // window opens (a refill SET, if any, is not a
                // regeneration measurement).
                ShardCounters::bump(&c.backend_failures);
            }
            return;
        }
        self.probes.insert(h, Probe { miss_at: now });
        // Bound the probe table: keep only the freshest half when
        // oversized (stale probes would be over-cap anyway).
        if self.probes.len() > 65_536 {
            let mut keep: Vec<(u64, Probe)> = self
                .probes
                .iter()
                .map(|(&k, &p)| (k, p))
                .collect();
            keep.sort_by_key(|(_, p)| std::cmp::Reverse(p.miss_at));
            keep.truncate(32_768);
            self.probes = keep.into_iter().collect();
        }
    }

    #[allow(clippy::too_many_arguments)] // internal; mirrors the public set() signature plus shard context
    pub fn set(
        &mut self,
        h: u64,
        key: &[u8],
        value: &[u8],
        ttl: Option<SimDuration>,
        explicit_penalty: Option<SimDuration>,
        now: SimTime,
        c: &ShardCounters,
    ) {
        let tick = self.tick(now);
        let penalty = self.penalty_for(h, explicit_penalty, now, c);
        // Replace any previous generation (also resolves collisions in
        // favour of the newest writer).
        if self.entries.contains_key(&h) {
            self.drop_entry(h, now, c);
        }
        let req = Request::set(now, h, key.len() as u32, value.len() as u32)
            .with_penalty(penalty);
        ShardCounters::bump(&c.sets);
        self.policy.on_set(&req, tick);
        if self.policy.cache().contains(h) {
            ShardCounters::bump(&c.items);
            ShardCounters::add(&c.live_bytes, (key.len() + value.len()) as u64);
            self.entries.insert(
                h,
                Entry {
                    key: Bytes::copy_from_slice(key),
                    value: Bytes::copy_from_slice(value),
                    expires: ttl.map(|d| now + d),
                },
            );
            // Mirror policy evictions into the byte store.
            self.reconcile(c);
        } else {
            ShardCounters::bump(&c.rejected);
        }
    }

    /// Removes store entries the policy has evicted.
    fn reconcile(&mut self, c: &ShardCounters) {
        if self.entries.len() <= self.policy.cache().len() {
            return;
        }
        let policy = &self.policy;
        let mut dropped = 0u64;
        let mut bytes = 0u64;
        self.entries.retain(|&h, e| {
            let keep = policy.cache().contains(h);
            if !keep {
                dropped += 1;
                bytes += (e.key.len() + e.value.len()) as u64;
            }
            keep
        });
        ShardCounters::add(&c.evictions, dropped);
        ShardCounters::sub(&c.items, dropped);
        ShardCounters::sub(&c.live_bytes, bytes);
    }

    pub fn delete(&mut self, h: u64, key: &[u8], c: &ShardCounters) -> bool {
        match self.entries.get(&h) {
            Some(e) if e.key.as_ref() == key => {
                ShardCounters::bump(&c.deletes);
                let now = SimTime::ZERO; // recency is irrelevant for removal
                self.drop_entry(h, now, c);
                true
            }
            _ => false,
        }
    }

    pub fn sweep_expired(&mut self, now: SimTime, c: &ShardCounters) -> usize {
        let expired: Vec<u64> = self
            .entries
            .iter()
            .filter(|(_, e)| Self::expired(e, now))
            .map(|(&h, _)| h)
            .collect();
        for h in &expired {
            self.drop_entry(*h, now, c);
        }
        ShardCounters::add(&c.expired, expired.len() as u64);
        expired.len()
    }

    /// Applies a batch of deferred hit records, oldest first. Each
    /// record counts as one access (serial and PAMA value-window
    /// cadence match the inline design); keys evicted since the hit
    /// are skipped by the policy.
    pub fn apply_deferred(&mut self, hits: &[u64], now: SimTime, c: &ShardCounters) {
        self.serial += hits.len() as u64;
        let tick = Tick { now, serial: self.serial };
        self.policy.on_batch_access(hits, tick);
        ShardCounters::add(&c.deferred_hits, hits.len() as u64);
    }

    /// Cross-checks the byte store against the policy's accounting.
    pub fn check_consistency(&self) -> Result<(), String> {
        if self.entries.len() != self.policy.cache().len() {
            return Err(format!(
                "store/policy divergence: {} entries vs {} policy items",
                self.entries.len(),
                self.policy.cache().len()
            ));
        }
        self.policy.cache().check_invariants()
    }
}

/// A shard plus its lock, deferred-hit log, and atomic counters — the
/// unit `PamaCache` holds one of per shard.
pub(crate) struct ShardCell {
    inner: RwLock<Shard>,
    log: AccessLog,
    counters: ShardCounters,
    /// Benchmark baseline: route every operation (GETs included)
    /// through the write lock with inline promotion, reproducing the
    /// pre-concurrency exclusive-Mutex design.
    exclusive: bool,
}

impl ShardCell {
    pub fn new(shard: Shard, exclusive: bool) -> Self {
        Self {
            inner: RwLock::new(shard),
            log: AccessLog::new(ACCESS_LOG_CAPACITY),
            counters: ShardCounters::default(),
            exclusive,
        }
    }

    /// Drains the log into the locked shard. Called with the write
    /// lock held, before any mutation, so deferred promotions are
    /// applied in recorded order ahead of the new operation.
    fn drain_into(&self, shard: &mut Shard, now: SimTime) {
        if self.log.is_empty() {
            return;
        }
        let mut buf = Vec::with_capacity(self.log.len() + 8);
        self.log.drain_into(&mut buf);
        if !buf.is_empty() {
            shard.apply_deferred(&buf, now, &self.counters);
        }
    }

    /// Unconditional drain (SET/DELETE/miss paths and explicit flush).
    pub fn flush(&self, now: SimTime) {
        let mut shard = self.inner.write();
        self.drain_into(&mut shard, now);
    }

    pub fn get(&self, h: u64, key: &[u8], now: SimTime) -> Option<Bytes> {
        if !self.exclusive {
            let shard = self.inner.read();
            if let Some(value) = shard.read_hit(h, key, now) {
                ShardCounters::bump(&self.counters.hits);
                self.log.record(h);
                return Some(value);
            }
        }
        // Miss / collision / expiry — or exclusive mode: full path
        // under the write lock.
        let mut shard = self.inner.write();
        if !self.exclusive {
            self.drain_into(&mut shard, now);
        }
        shard.get_locked(h, key, now, &self.counters)
    }

    pub fn set(
        &self,
        h: u64,
        key: &[u8],
        value: &[u8],
        ttl: Option<SimDuration>,
        explicit_penalty: Option<SimDuration>,
        now: SimTime,
    ) {
        let mut shard = self.inner.write();
        if !self.exclusive {
            self.drain_into(&mut shard, now);
        }
        shard.set(h, key, value, ttl, explicit_penalty, now, &self.counters);
    }

    pub fn delete(&self, h: u64, key: &[u8], now: SimTime) -> bool {
        let mut shard = self.inner.write();
        if !self.exclusive {
            self.drain_into(&mut shard, now);
        }
        shard.delete(h, key, &self.counters)
    }

    pub fn contains(&self, h: u64, key: &[u8], now: SimTime) -> bool {
        let shard = self.inner.read();
        match shard.entry_state(h, key, now) {
            EntryState::Live => true,
            EntryState::Absent => false,
            EntryState::Expired => {
                drop(shard);
                let mut shard = self.inner.write();
                if !self.exclusive {
                    self.drain_into(&mut shard, now);
                }
                shard.expire_if_dead(h, key, now, &self.counters);
                false
            }
        }
    }

    pub fn sweep_expired(&self, now: SimTime) -> usize {
        let mut shard = self.inner.write();
        if !self.exclusive {
            self.drain_into(&mut shard, now);
        }
        shard.sweep_expired(now, &self.counters)
    }

    /// Batched GET for keys mapping to this shard: one read-lock pass
    /// serves every hit; a single write-lock pass (if needed) handles
    /// the misses.
    pub fn multi_get_group(
        &self,
        group: &[(usize, u64)],
        keys: &[&[u8]],
        out: &mut [Option<Bytes>],
        now: SimTime,
    ) {
        if self.exclusive {
            let mut shard = self.inner.write();
            for &(i, h) in group {
                out[i] = shard.get_locked(h, keys[i], now, &self.counters);
            }
            return;
        }
        let mut misses: Vec<(usize, u64)> = Vec::new();
        {
            let shard = self.inner.read();
            for &(i, h) in group {
                match shard.read_hit(h, keys[i], now) {
                    Some(value) => {
                        ShardCounters::bump(&self.counters.hits);
                        self.log.record(h);
                        out[i] = Some(value);
                    }
                    None => misses.push((i, h)),
                }
            }
        }
        if !misses.is_empty() {
            let mut shard = self.inner.write();
            self.drain_into(&mut shard, now);
            for (i, h) in misses {
                out[i] = shard.get_locked(h, keys[i], now, &self.counters);
            }
        }
    }

    /// Batched SET for items mapping to this shard: one write-lock
    /// take for the whole group.
    pub fn multi_set_group(
        &self,
        group: &[(usize, u64)],
        items: &[(&[u8], &[u8])],
        ttl: Option<SimDuration>,
        now: SimTime,
    ) {
        let mut shard = self.inner.write();
        if !self.exclusive {
            self.drain_into(&mut shard, now);
        }
        for &(i, h) in group {
            let (key, value) = items[i];
            shard.set(h, key, value, ttl, None, now, &self.counters);
        }
    }

    pub fn stats(&self) -> crate::stats::CacheStats {
        let mut s = self.counters.snapshot();
        s.deferred_dropped = self.log.dropped();
        s
    }

    /// Flushes, then cross-checks store vs policy accounting.
    pub fn check_consistency(&self, now: SimTime) -> Result<(), String> {
        let mut shard = self.inner.write();
        self.drain_into(&mut shard, now);
        shard.check_consistency()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard() -> Shard {
        let cfg = CacheConfig {
            total_bytes: 1 << 20,
            slab_bytes: 64 << 10,
            ..CacheConfig::default()
        };
        Shard::new(cfg, PamaConfig::default())
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn live_penalty_probe_measures_gap() {
        let mut s = shard();
        let c = ShardCounters::default();
        // miss at t=100ms, refill at t=180ms → 80ms penalty measured
        assert!(s.get_locked(1, b"k", t(100), &c).is_none());
        s.set(1, b"k", b"v", None, None, t(180), &c);
        assert_eq!(s.estimates.get(&1).copied(), Some(SimDuration::from_millis(80)));
        let st = c.snapshot();
        assert_eq!(st.measured_penalties, 1);
        assert!((st.mean_measured_penalty_us - 80_000.0).abs() < 1.0);
        // The stored item's penalty band reflects the measurement.
        let meta: pama_core::cache::ItemMeta = s.policy.cache().peek(1).unwrap();
        assert_eq!(meta.penalty, SimDuration::from_millis(80));
    }

    #[test]
    fn explicit_penalty_wins_over_probe() {
        let mut s = shard();
        let c = ShardCounters::default();
        assert!(s.get_locked(2, b"k2", t(0), &c).is_none());
        s.set(2, b"k2", b"v", None, Some(SimDuration::from_secs(2)), t(50), &c);
        let meta = s.policy.cache().peek(2).unwrap();
        assert_eq!(meta.penalty, SimDuration::from_secs(2));
    }

    #[test]
    fn over_cap_gap_falls_back_to_default() {
        let mut s = shard();
        let c = ShardCounters::default();
        assert!(s.get_locked(3, b"k3", t(0), &c).is_none());
        s.set(3, b"k3", b"v", None, None, t(10_000), &c); // 10 s gap > cap
        let meta = s.policy.cache().peek(3).unwrap();
        assert_eq!(meta.penalty, DEFAULT_PENALTY);
    }

    #[test]
    fn ttl_expiry_is_lazy_and_sweepable() {
        let mut s = shard();
        let c = ShardCounters::default();
        s.set(4, b"k4", b"v", Some(SimDuration::from_millis(100)), None, t(0), &c);
        assert!(matches!(s.entry_state(4, b"k4", t(50)), EntryState::Live));
        assert!(
            matches!(s.entry_state(4, b"k4", t(150)), EntryState::Expired),
            "expired entry still reported live"
        );
        s.expire_if_dead(4, b"k4", t(150), &c);
        assert!(matches!(s.entry_state(4, b"k4", t(150)), EntryState::Absent));
        // sweep path
        s.set(5, b"k5", b"v", Some(SimDuration::from_millis(10)), None, t(200), &c);
        assert_eq!(s.sweep_expired(t(500), &c), 1);
        assert_eq!(c.snapshot().expired, 1);
    }

    #[test]
    fn collision_resolves_to_newest_writer() {
        let mut s = shard();
        let c = ShardCounters::default();
        s.set(7, b"first", b"A", None, None, t(0), &c);
        // same hash, different key bytes: treated as miss, then overwritten
        assert!(s.get_locked(7, b"second", t(1), &c).is_none());
        s.set(7, b"second", b"B", None, None, t(2), &c);
        assert_eq!(s.get_locked(7, b"second", t(3), &c).as_deref(), Some(&b"B"[..]));
        assert!(s.get_locked(7, b"first", t(4), &c).is_none());
        // collisions never reach the read-hit fast path either
        assert!(s.read_hit(7, b"first", t(5)).is_none());
    }

    #[test]
    fn reconcile_drops_policy_evictions() {
        let mut s = shard();
        let c = ShardCounters::default();
        let v = vec![0u8; 30_000];
        for i in 0..200u64 {
            s.set(i, format!("key{i}").as_bytes(), &v, None, None, t(i), &c);
        }
        let st = c.snapshot();
        assert!(st.items < 40, "1 MiB can't hold 200×30 KB: items {}", st.items);
        assert!(st.evictions > 0);
        // store and policy agree exactly, incremental counters included
        assert_eq!(st.items as usize, s.policy.cache().len());
        assert_eq!(st.items as usize, s.entries.len());
        s.check_consistency().unwrap();
    }

    #[test]
    fn deferred_hits_promote_like_inline_gets() {
        // Two shards with identical geometry: one promotes inline on
        // every GET, the other records hits and applies them in one
        // batch. After the drain, LRU order (and thus the eviction
        // victim) must match.
        let mut inline = shard();
        let mut deferred = shard();
        let ci = ShardCounters::default();
        let cd = ShardCounters::default();
        let v = vec![0u8; 100];
        for i in 0..8u64 {
            inline.set(i, format!("k{i}").as_bytes(), &v, None, None, t(i), &ci);
            deferred.set(i, format!("k{i}").as_bytes(), &v, None, None, t(i), &cd);
        }
        // Touch keys 0..4 (oldest first) — inline promotes immediately.
        for i in 0..4u64 {
            assert!(inline.get_locked(i, format!("k{i}").as_bytes(), t(100 + i), &ci).is_some());
            assert!(deferred.read_hit(i, format!("k{i}").as_bytes(), t(100 + i)).is_some());
        }
        deferred.apply_deferred(&[0, 1, 2, 3], t(104), &cd);
        // Same serial consumed, same access count.
        assert_eq!(inline.serial, deferred.serial);
        // Same LRU state: evict pressure must pick the same victims.
        let fill = vec![0u8; 100];
        for i in 100..1200u64 {
            inline.set(i, format!("f{i}").as_bytes(), &fill, None, None, t(200 + i), &ci);
            deferred.set(i, format!("f{i}").as_bytes(), &fill, None, None, t(200 + i), &cd);
        }
        for i in 0..8u64 {
            assert_eq!(
                inline.policy.cache().contains(i),
                deferred.policy.cache().contains(i),
                "key {i} diverged between inline and deferred promotion"
            );
        }
        inline.check_consistency().unwrap();
        deferred.check_consistency().unwrap();
    }
}
