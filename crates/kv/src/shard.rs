//! One cache shard: real byte storage + a PAMA policy instance for
//! memory accounting and eviction decisions, plus the live penalty
//! probe (the paper's GET-miss→SET estimator running online).

use crate::stats::CacheStats;
use bytes::Bytes;
use pama_core::config::{CacheConfig, Tick};
use pama_core::policy::{Pama, PamaConfig, Policy};
use pama_faults::BackendSim;
use pama_trace::penalty::{DEFAULT_PENALTY, PENALTY_CAP};
use pama_trace::Request;
use pama_util::{FastMap, SimDuration, SimTime};

/// A stored entry: the full key (for collision rejection), the value,
/// and the expiry, if any.
#[derive(Debug, Clone)]
struct Entry {
    key: Bytes,
    value: Bytes,
    expires: Option<SimTime>,
}

/// An open penalty-probe window: the key missed at `miss_at`; a `set`
/// arriving before the cap closes the window and records the gap as
/// the key's regeneration penalty.
#[derive(Debug, Clone, Copy)]
struct Probe {
    miss_at: SimTime,
}

/// Live per-key penalty knowledge.
///
/// Exposed for diagnostics as [`LivePenaltyProbe`]: how many penalties
/// have been measured and their running mean.
#[derive(Debug, Default, Clone)]
pub struct LivePenaltyProbe {
    /// Number of measured (miss→set) samples.
    pub samples: u64,
    /// Mean measured penalty in microseconds.
    pub mean_us: f64,
}

pub(crate) struct Shard {
    policy: Pama,
    entries: FastMap<u64, Entry>,
    estimates: FastMap<u64, SimDuration>,
    probes: FastMap<u64, Probe>,
    stats: CacheStats,
    probe: LivePenaltyProbe,
    serial: u64,
    /// Optional simulated backing store. When present, every GET miss
    /// drives a fetch through it — retries, timeouts, and outages
    /// included — and a successful fetch's latency becomes the key's
    /// penalty estimate (ground truth observed, not probed).
    backend: Option<BackendSim>,
}

impl Shard {
    pub fn new(mut cfg: CacheConfig, pama: PamaConfig) -> Self {
        // The shard drives inserts explicitly through `set`; the
        // policy must never phantom-fill on its own.
        cfg.demand_fill = false;
        Self {
            policy: Pama::with_config(cfg, pama),
            entries: FastMap::default(),
            estimates: FastMap::default(),
            probes: FastMap::default(),
            stats: CacheStats::default(),
            probe: LivePenaltyProbe::default(),
            serial: 0,
            backend: None,
        }
    }

    pub fn with_backend(mut self, backend: BackendSim) -> Self {
        self.backend = Some(backend);
        self
    }

    fn tick(&mut self, now: SimTime) -> Tick {
        self.serial += 1;
        Tick { now, serial: self.serial }
    }

    /// The penalty to attribute to a key on insert.
    fn penalty_for(&mut self, h: u64, explicit: Option<SimDuration>, now: SimTime) -> SimDuration {
        if let Some(p) = explicit {
            return p.min(PENALTY_CAP);
        }
        if let Some(probe) = self.probes.remove(&h) {
            let gap = now.saturating_since(probe.miss_at);
            if gap <= PENALTY_CAP && gap > SimDuration::ZERO {
                // Fold into the live estimate (EWMA-free mean keeps the
                // math simple and the probe struct cheap).
                self.probe.samples += 1;
                self.probe.mean_us += (gap.as_micros() as f64 - self.probe.mean_us)
                    / self.probe.samples as f64;
                self.estimates.insert(h, gap);
                return gap;
            }
        }
        self.estimates.get(&h).copied().unwrap_or(DEFAULT_PENALTY)
    }

    fn expired(e: &Entry, now: SimTime) -> bool {
        e.expires.is_some_and(|t| now >= t)
    }

    /// Drops an entry from both the store and the policy bookkeeping.
    fn drop_entry(&mut self, h: u64, now: SimTime) {
        if self.entries.remove(&h).is_some() {
            let t = Tick { now, serial: self.serial };
            // Width of the delete request is irrelevant to removal.
            self.policy.on_delete(&Request::delete(now, h, 0), t);
        }
    }

    pub fn get(&mut self, h: u64, key: &[u8], now: SimTime) -> Option<Bytes> {
        let tick = self.tick(now);
        match self.entries.get(&h) {
            Some(e) if e.key.as_ref() == key && !Self::expired(e, now) => {
                let value = e.value.clone();
                // Keep the policy's recency bookkeeping in step. The
                // request's sizes mirror the stored entry.
                let req = Request::get(now, h, key.len() as u32, value.len() as u32);
                let out = self.policy.on_get(&req, tick);
                debug_assert!(out.hit, "policy lost a stored key");
                self.stats.hits += 1;
                Some(value)
            }
            Some(_) => {
                // Hash collision with a different key, or expired: treat
                // as a miss and make room for the incoming generation.
                self.drop_entry(h, now);
                self.miss(h, now);
                None
            }
            None => {
                self.miss(h, now);
                None
            }
        }
    }

    fn miss(&mut self, h: u64, now: SimTime) {
        self.stats.misses += 1;
        if let Some(backend) = self.backend.as_mut() {
            let out = backend.fetch(h, self.serial);
            self.stats.backend_fetches += 1;
            self.stats.backend_retries += u64::from(out.attempts.saturating_sub(1));
            self.stats.backend_time_us =
                self.stats.backend_time_us.saturating_add(out.latency.as_micros());
            if out.ok {
                // The fetch cost is the key's regeneration penalty,
                // observed directly — better than the probe's guess, so
                // no probe window opens (a wall-clock gap would shadow
                // the measured latency).
                self.estimates.insert(h, out.latency.min(PENALTY_CAP));
                self.probe.samples += 1;
                self.probe.mean_us += (out.latency.min(PENALTY_CAP).as_micros() as f64
                    - self.probe.mean_us)
                    / self.probe.samples as f64;
            } else {
                // Degraded miss: the backend could not serve. No probe
                // window opens (a refill SET, if any, is not a
                // regeneration measurement).
                self.stats.backend_failures += 1;
            }
            return;
        }
        self.probes.insert(h, Probe { miss_at: now });
        // Bound the probe table: keep only the freshest half when
        // oversized (stale probes would be over-cap anyway).
        if self.probes.len() > 65_536 {
            let mut keep: Vec<(u64, Probe)> = self
                .probes
                .iter()
                .map(|(&k, &p)| (k, p))
                .collect();
            keep.sort_by_key(|(_, p)| std::cmp::Reverse(p.miss_at));
            keep.truncate(32_768);
            self.probes = keep.into_iter().collect();
        }
    }

    pub fn set(
        &mut self,
        h: u64,
        key: &[u8],
        value: &[u8],
        ttl: Option<SimDuration>,
        explicit_penalty: Option<SimDuration>,
        now: SimTime,
    ) {
        let tick = self.tick(now);
        let penalty = self.penalty_for(h, explicit_penalty, now);
        // Replace any previous generation (also resolves collisions in
        // favour of the newest writer).
        if self.entries.contains_key(&h) {
            self.drop_entry(h, now);
        }
        let req = Request::set(now, h, key.len() as u32, value.len() as u32)
            .with_penalty(penalty);
        self.stats.sets += 1;
        self.policy.on_set(&req, tick);
        if self.policy.cache().contains(h) {
            self.entries.insert(
                h,
                Entry {
                    key: Bytes::copy_from_slice(key),
                    value: Bytes::copy_from_slice(value),
                    expires: ttl.map(|d| now + d),
                },
            );
            // Mirror policy evictions into the byte store.
            self.reconcile();
        } else {
            self.stats.rejected += 1;
        }
    }

    /// Removes store entries the policy has evicted.
    fn reconcile(&mut self) {
        if self.entries.len() <= self.policy.cache().len() {
            return;
        }
        let policy = &self.policy;
        let mut dropped = 0u64;
        self.entries.retain(|&h, _| {
            let keep = policy.cache().contains(h);
            if !keep {
                dropped += 1;
            }
            keep
        });
        self.stats.evictions += dropped;
    }

    pub fn delete(&mut self, h: u64, key: &[u8]) -> bool {
        match self.entries.get(&h) {
            Some(e) if e.key.as_ref() == key => {
                self.stats.deletes += 1;
                let now = SimTime::ZERO; // recency is irrelevant for removal
                self.drop_entry(h, now);
                true
            }
            _ => false,
        }
    }

    pub fn contains(&mut self, h: u64, key: &[u8], now: SimTime) -> bool {
        match self.entries.get(&h) {
            Some(e) if e.key.as_ref() == key && !Self::expired(e, now) => true,
            Some(e) if e.key.as_ref() == key => {
                self.drop_entry(h, now);
                false
            }
            _ => false,
        }
    }

    pub fn sweep_expired(&mut self, now: SimTime) -> usize {
        let expired: Vec<u64> = self
            .entries
            .iter()
            .filter(|(_, e)| Self::expired(e, now))
            .map(|(&h, _)| h)
            .collect();
        for h in &expired {
            self.drop_entry(*h, now);
        }
        self.stats.expired += expired.len() as u64;
        expired.len()
    }

    pub fn stats(&self) -> CacheStats {
        let mut s = self.stats.clone();
        s.items = self.entries.len() as u64;
        s.live_bytes = self
            .entries
            .values()
            .map(|e| (e.key.len() + e.value.len()) as u64)
            .sum();
        s.measured_penalties = self.probe.samples;
        s.mean_measured_penalty_us = self.probe.mean_us;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard() -> Shard {
        let cfg = CacheConfig {
            total_bytes: 1 << 20,
            slab_bytes: 64 << 10,
            ..CacheConfig::default()
        };
        Shard::new(cfg, PamaConfig::default())
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn live_penalty_probe_measures_gap() {
        let mut s = shard();
        // miss at t=100ms, refill at t=180ms → 80ms penalty measured
        assert!(s.get(1, b"k", t(100)).is_none());
        s.set(1, b"k", b"v", None, None, t(180));
        assert_eq!(s.estimates.get(&1).copied(), Some(SimDuration::from_millis(80)));
        let st = s.stats();
        assert_eq!(st.measured_penalties, 1);
        assert!((st.mean_measured_penalty_us - 80_000.0).abs() < 1.0);
        // The stored item's penalty band reflects the measurement.
        let meta: pama_core::cache::ItemMeta = s.policy.cache().peek(1).unwrap();
        assert_eq!(meta.penalty, SimDuration::from_millis(80));
    }

    #[test]
    fn explicit_penalty_wins_over_probe() {
        let mut s = shard();
        assert!(s.get(2, b"k2", t(0)).is_none());
        s.set(2, b"k2", b"v", None, Some(SimDuration::from_secs(2)), t(50));
        let meta = s.policy.cache().peek(2).unwrap();
        assert_eq!(meta.penalty, SimDuration::from_secs(2));
    }

    #[test]
    fn over_cap_gap_falls_back_to_default() {
        let mut s = shard();
        assert!(s.get(3, b"k3", t(0)).is_none());
        s.set(3, b"k3", b"v", None, None, t(10_000)); // 10 s gap > cap
        let meta = s.policy.cache().peek(3).unwrap();
        assert_eq!(meta.penalty, DEFAULT_PENALTY);
    }

    #[test]
    fn ttl_expiry_is_lazy_and_sweepable() {
        let mut s = shard();
        s.set(4, b"k4", b"v", Some(SimDuration::from_millis(100)), None, t(0));
        assert!(s.contains(4, b"k4", t(50)));
        assert!(!s.contains(4, b"k4", t(150)), "expired entry still visible");
        // sweep path
        s.set(5, b"k5", b"v", Some(SimDuration::from_millis(10)), None, t(200));
        assert_eq!(s.sweep_expired(t(500)), 1);
        assert_eq!(s.stats().expired, 1);
    }

    #[test]
    fn collision_resolves_to_newest_writer() {
        let mut s = shard();
        s.set(7, b"first", b"A", None, None, t(0));
        // same hash, different key bytes: treated as miss, then overwritten
        assert!(s.get(7, b"second", t(1)).is_none());
        s.set(7, b"second", b"B", None, None, t(2));
        assert_eq!(s.get(7, b"second", t(3)).as_deref(), Some(&b"B"[..]));
        assert!(s.get(7, b"first", t(4)).is_none());
    }

    #[test]
    fn reconcile_drops_policy_evictions() {
        let mut s = shard();
        let v = vec![0u8; 30_000];
        for i in 0..200u64 {
            s.set(i, format!("key{i}").as_bytes(), &v, None, None, t(i));
        }
        let st = s.stats();
        assert!(st.items < 40, "1 MiB can't hold 200×30 KB: items {}", st.items);
        assert!(st.evictions > 0);
        // store and policy agree exactly
        assert_eq!(st.items as usize, s.policy.cache().len());
    }
}
