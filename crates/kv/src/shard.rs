//! One cache shard: real byte storage + a PAMA policy instance for
//! memory accounting and eviction decisions, plus the live penalty
//! probe (the paper's GET-miss→SET estimator running online).
//!
//! Concurrency model (see DESIGN.md): the mutable state lives in
//! [`Shard`] behind a [`ShardCell`]'s `RwLock`. A cache-hit GET runs
//! entirely under the *shared* read lock — hash lookup, key
//! verification, TTL check, value clone — and records the hit in the
//! cell's lock-free [`AccessLog`] instead of promoting the entry
//! inline. Every path that takes the write lock (SET, DELETE, a GET
//! miss, TTL sweeps, explicit flush) drains the log first, so deferred
//! promotions are applied in recorded order before any state change.
//! The read path itself never drains: applying a deferred hit to the
//! policy costs as much as the inline promotion it replaced, so a
//! reader-side drain would hand the saved cost right back. Instead the
//! ring drops (and counts) hits once full — bounded-staleness recency:
//! eviction and allocation decisions only happen under the write lock,
//! and by the time one runs, every hit recorded before it (up to ring
//! capacity) has been applied in order. In a single-threaded sequence
//! whose read bursts fit the ring, the drained promotions land in
//! exactly the order and counts the old lock-everything design
//! produced.

use crate::log::AccessLog;
use crate::options::{CacheError, CacheValue};
use crate::stats::{ShardCounters, SlabClassReport, SlabReport};
use bytes::Bytes;
use pama_core::config::{CacheConfig, Tick};
use pama_core::policy::{Pama, PamaConfig, Policy, PolicyEvent};
use pama_faults::BackendSim;
use pama_metrics::MetricsRegistry;
use pama_slab::{SlabArena, SlotRef};
use pama_trace::penalty::{DEFAULT_PENALTY, PENALTY_CAP};
use pama_trace::Request;
use pama_util::{FastMap, SimDuration, SimTime};
use parking_lot::RwLock;
use std::sync::Arc;
use std::time::Instant;

/// Capacity of each shard's deferred-hit ring: the most promotions the
/// policy can owe between two write-lock events. A full drain of this
/// size costs tens of microseconds — long enough to amortize the write
/// lock, short enough not to stall the writer that triggers it.
const ACCESS_LOG_CAPACITY: usize = 4096;

/// Where an entry's bytes live.
///
/// The default is a [`SlotRef`] into the shard's slab arena — the
/// physical counterpart of the policy's slab ledger. The `Heap`
/// variant (one `Bytes` allocation per key and value) is kept as the
/// measurable baseline the `repro memory` experiment compares against,
/// exactly like `exclusive_lock` preserves the pre-concurrency lock
/// design for `repro perf`.
#[derive(Debug, Clone)]
enum EntryLoc {
    /// `key ‖ value` bytes in the slab arena.
    Slot(SlotRef),
    /// Individually heap-allocated key and value (baseline mode).
    Heap { key: Bytes, value: Bytes },
}

/// A stored entry: where its bytes live (the slot stores the full key
/// for collision rejection), the expiry, if any, and the wire-protocol
/// metadata (opaque flags, store-order CAS stamp).
#[derive(Debug, Clone)]
struct Entry {
    loc: EntryLoc,
    expires: Option<SimTime>,
    flags: u32,
    cas: u64,
    /// Penalty band at insert time. Stable while resident (an item's
    /// penalty is fixed until overwritten), so the read path can
    /// attribute hits per band without a second policy-ledger lookup.
    band: u8,
}

/// The shard's byte store: a slab arena kept in lockstep with the
/// policy ledger, or the per-item-allocation baseline.
enum Storage {
    Arena(SlabArena),
    Heap,
}

/// An open penalty-probe window: the key missed at `miss_at`; a `set`
/// arriving before the cap closes the window and records the gap as
/// the key's regeneration penalty.
#[derive(Debug, Clone, Copy)]
struct Probe {
    miss_at: SimTime,
}

/// Live per-key penalty knowledge: how many penalties have been
/// measured and their running mean. The same numbers appear in
/// [`crate::CacheStats`] as `measured_penalties` /
/// `mean_measured_penalty_us`; this type names them for diagnostics.
#[derive(Debug, Default, Clone)]
pub struct LivePenaltyProbe {
    /// Number of measured (miss→set) samples.
    pub samples: u64,
    /// Mean measured penalty in microseconds.
    pub mean_us: f64,
}

/// What an immutable lookup found (drives the lock-upgrade decision).
enum EntryState {
    /// Present, key matches, not expired.
    Live,
    /// Present and key matches but past its TTL: needs a write lock to
    /// drop.
    Expired,
    /// Absent, or a hash collision with a different key.
    Absent,
}

pub(crate) struct Shard {
    policy: Pama,
    entries: FastMap<u64, Entry>,
    storage: Storage,
    estimates: FastMap<u64, SimDuration>,
    probes: FastMap<u64, Probe>,
    /// Shard geometry, kept so `set` can tell "can never fit"
    /// ([`CacheError::ValueTooLarge`]) apart from "no room right now"
    /// before consulting the policy.
    cfg: CacheConfig,
    serial: u64,
    /// Optional simulated backing store. When present, every GET miss
    /// drives a fetch through it — retries, timeouts, and outages
    /// included — and a successful fetch's latency becomes the key's
    /// penalty estimate (ground truth observed, not probed).
    backend: Option<BackendSim>,
    /// Shared observability registry (per-band counters, slab-move
    /// timing). `None` keeps the hot paths free of even the branch's
    /// atomic traffic — the baseline `repro obs` measures against.
    metrics: Option<Arc<MetricsRegistry>>,
}

impl Shard {
    pub fn new(mut cfg: CacheConfig, pama: PamaConfig, heap_storage: bool) -> Self {
        // Pre-size the maps from slab geometry: the shard can never
        // hold more items than total_bytes / min_slot, so reserving
        // that up front avoids rehash storms during warm-up. Capped so
        // a huge shard doesn't pay for pathological pre-allocation.
        let max_items = (cfg.total_bytes / cfg.min_slot.max(1)).min(1 << 18) as usize;
        // The shard drives inserts explicitly through `set`; the
        // policy must never phantom-fill on its own.
        cfg.demand_fill = false;
        let storage =
            if heap_storage { Storage::Heap } else { Storage::Arena(SlabArena::new(&cfg)) };
        let mut policy = Pama::with_config(cfg.clone(), pama);
        // Both storage modes replay the policy's decisions: the arena
        // acts on all of them, the heap baseline only on evictions
        // (grants and moves are physical-layout events it doesn't
        // have). Without the replay, policy-evicted keys would linger
        // in the store map.
        policy.set_record_events(true);
        Self {
            policy,
            entries: FastMap::with_capacity_and_hasher(max_items, Default::default()),
            storage,
            estimates: FastMap::with_capacity_and_hasher(max_items, Default::default()),
            probes: FastMap::with_capacity_and_hasher(max_items.min(4096), Default::default()),
            cfg,
            serial: 0,
            backend: None,
            metrics: None,
        }
    }

    pub fn with_backend(mut self, backend: BackendSim) -> Self {
        self.backend = Some(backend);
        self
    }

    pub fn with_metrics(mut self, metrics: Option<Arc<MetricsRegistry>>) -> Self {
        self.metrics = metrics;
        self
    }

    fn tick(&mut self, now: SimTime) -> Tick {
        self.serial += 1;
        Tick { now, serial: self.serial }
    }

    /// The penalty to attribute to a key on insert.
    fn penalty_for(
        &mut self,
        h: u64,
        explicit: Option<SimDuration>,
        now: SimTime,
        c: &ShardCounters,
    ) -> SimDuration {
        if let Some(p) = explicit {
            return p.min(PENALTY_CAP);
        }
        if let Some(probe) = self.probes.remove(&h) {
            let gap = now.saturating_since(probe.miss_at);
            if gap <= PENALTY_CAP && gap > SimDuration::ZERO {
                ShardCounters::bump(&c.penalty_samples);
                ShardCounters::add(&c.penalty_sum_us, gap.as_micros());
                self.estimates.insert(h, gap);
                return gap;
            }
        }
        self.estimates.get(&h).copied().unwrap_or(DEFAULT_PENALTY)
    }

    fn expired(e: &Entry, now: SimTime) -> bool {
        e.expires.is_some_and(|t| now >= t)
    }

    /// Whether the stored entry's key bytes equal `key`.
    fn key_matches(&self, e: &Entry, key: &[u8]) -> bool {
        match &e.loc {
            EntryLoc::Heap { key: k, .. } => k.as_ref() == key,
            EntryLoc::Slot(r) => match &self.storage {
                Storage::Arena(a) => a.read(*r).is_some_and(|(k, _)| k == key),
                Storage::Heap => false,
            },
        }
    }

    /// The entry's value, copied out of its slot (or cheaply cloned
    /// from the heap baseline's refcounted allocation).
    fn value_of(&self, e: &Entry) -> Option<Bytes> {
        match &e.loc {
            EntryLoc::Heap { value, .. } => Some(value.clone()),
            EntryLoc::Slot(r) => match &self.storage {
                Storage::Arena(a) => a.read(*r).map(|(_, v)| Bytes::copy_from_slice(v)),
                Storage::Heap => None,
            },
        }
    }

    /// `key + value` length of the stored entry.
    fn stored_len(&self, e: &Entry) -> u64 {
        match &e.loc {
            EntryLoc::Heap { key, value } => (key.len() + value.len()) as u64,
            EntryLoc::Slot(r) => match &self.storage {
                Storage::Arena(a) => a.locate(*r).map_or(0, |(_, _, kl, vl)| (kl + vl) as u64),
                Storage::Heap => 0,
            },
        }
    }

    /// Releases an entry's bytes (frees its arena slot, if any).
    fn release(storage: &mut Storage, e: &Entry) {
        if let (EntryLoc::Slot(r), Storage::Arena(a)) = (&e.loc, storage) {
            let freed = a.remove(*r);
            debug_assert!(freed.is_ok(), "stale slot handle in index: {freed:?}");
        }
    }

    /// Drops an entry from the store, the arena, and the policy
    /// bookkeeping.
    fn drop_entry(&mut self, h: u64, now: SimTime, c: &ShardCounters) {
        if let Some(e) = self.entries.remove(&h) {
            ShardCounters::sub(&c.items, 1);
            ShardCounters::sub(&c.live_bytes, self.stored_len(&e));
            Self::release(&mut self.storage, &e);
            let t = Tick { now, serial: self.serial };
            // Width of the delete request is irrelevant to removal.
            self.policy.on_delete(&Request::delete(now, h, 0), t);
        }
    }

    /// The shared-lock hit path: lookup, key check, TTL check, value
    /// copy-out. No mutation — recency bookkeeping is the caller's job
    /// (via the access log), and reading a slot never touches the
    /// ledger.
    pub fn read_hit(&self, h: u64, key: &[u8], now: SimTime) -> Option<CacheValue> {
        match self.entries.get(&h) {
            Some(e) if self.key_matches(e, key) && !Self::expired(e, now) => {
                let value = self.value_of(e)?;
                // 1:1 with the caller's aggregate-hit bump, so band
                // sums always equal the aggregate (repro obs asserts).
                if let Some(m) = &self.metrics {
                    m.band(e.band as usize).hits.inc();
                }
                Some(CacheValue { value, flags: e.flags, cas: e.cas })
            }
            _ => None,
        }
    }

    /// Immutable classification of a key's state (for `contains`).
    fn entry_state(&self, h: u64, key: &[u8], now: SimTime) -> EntryState {
        match self.entries.get(&h) {
            Some(e) if self.key_matches(e, key) && !Self::expired(e, now) => EntryState::Live,
            Some(e) if self.key_matches(e, key) => EntryState::Expired,
            _ => EntryState::Absent,
        }
    }

    /// Drops the entry if it is still the same key and expired (the
    /// state may have changed between a read-lock check and the write
    /// lock this runs under).
    fn expire_if_dead(&mut self, h: u64, key: &[u8], now: SimTime, c: &ShardCounters) {
        if let Some(e) = self.entries.get(&h) {
            if self.key_matches(e, key) && Self::expired(e, now) {
                self.drop_entry(h, now, c);
                self.publish_storage_gauges(c);
            }
        }
    }

    /// The write-lock GET: identical to the pre-concurrency design —
    /// a hit promotes inline through the policy; a miss (or collision
    /// or expiry) opens a penalty probe / drives the backend.
    pub fn get_locked(
        &mut self,
        h: u64,
        key: &[u8],
        now: SimTime,
        c: &ShardCounters,
    ) -> Option<CacheValue> {
        let tick = self.tick(now);
        match self.entries.get(&h) {
            Some(e) if self.key_matches(e, key) && !Self::expired(e, now) => {
                let (flags, cas, band) = (e.flags, e.cas, e.band);
                let value = self.value_of(e)?;
                // Keep the policy's recency bookkeeping in step. The
                // request's sizes mirror the stored entry.
                let req = Request::get(now, h, key.len() as u32, value.len() as u32);
                let out = self.policy.on_get(&req, tick);
                debug_assert!(out.hit, "policy lost a stored key");
                ShardCounters::bump(&c.hits);
                if let Some(m) = &self.metrics {
                    m.band(band as usize).hits.inc();
                }
                Some(CacheValue { value, flags, cas })
            }
            Some(_) => {
                // Hash collision with a different key, or expired: treat
                // as a miss and make room for the incoming generation.
                self.drop_entry(h, now, c);
                self.miss(h, key, tick, c);
                self.publish_storage_gauges(c);
                None
            }
            None => {
                self.miss(h, key, tick, c);
                None
            }
        }
    }

    fn miss(&mut self, h: u64, key: &[u8], tick: Tick, c: &ShardCounters) {
        let now = tick.now;
        ShardCounters::bump(&c.misses);
        // Tell the policy about the miss: with demand-fill off nothing
        // is inserted, but the access advances the value window and —
        // crucially for slab rebalance — a ghosted key credits its
        // subclass's *incoming value*. Without this signal a physical
        // store would never accumulate the evidence that triggers the
        // paper's cross-class migrations.
        let req = Request::get(now, h, key.len() as u32, 0);
        let out = self.policy.on_get(&req, tick);
        debug_assert!(!out.hit, "policy holds a key the store lost");
        if let Some(backend) = self.backend.as_mut() {
            let out = backend.fetch(h, self.serial);
            ShardCounters::bump(&c.backend_fetches);
            ShardCounters::add(&c.backend_retries, u64::from(out.attempts.saturating_sub(1)));
            ShardCounters::add(&c.backend_time_us, out.latency.as_micros());
            if out.ok {
                // The fetch cost is the key's regeneration penalty,
                // observed directly — better than the probe's guess, so
                // no probe window opens (a wall-clock gap would shadow
                // the measured latency).
                let latency = out.latency.min(PENALTY_CAP);
                self.estimates.insert(h, latency);
                ShardCounters::bump(&c.penalty_samples);
                ShardCounters::add(&c.penalty_sum_us, latency.as_micros());
            } else {
                // Degraded miss: the backend could not serve. No probe
                // window opens (a refill SET, if any, is not a
                // regeneration measurement).
                ShardCounters::bump(&c.backend_failures);
            }
        } else {
            self.probes.insert(h, Probe { miss_at: now });
            // Bound the probe table: keep only the freshest half when
            // oversized (stale probes would be over-cap anyway).
            if self.probes.len() > 65_536 {
                let mut keep: Vec<(u64, Probe)> =
                    self.probes.iter().map(|(&k, &p)| (k, p)).collect();
                keep.sort_by_key(|(_, p)| std::cmp::Reverse(p.miss_at));
                keep.truncate(32_768);
                self.probes = keep.into_iter().collect();
            }
        }
        // Attribute the miss to the band of the key's best-known
        // regeneration penalty (the backend's just-measured latency,
        // a prior estimate, or the default) and accumulate the
        // penalty-weighted miss cost — the paper's service-time
        // integrand. 1:1 with the `misses` bump above.
        if let Some(m) = &self.metrics {
            let penalty = self.estimates.get(&h).copied().unwrap_or(DEFAULT_PENALTY);
            let cells = m.band(self.cfg.band_of(penalty));
            cells.misses.inc();
            cells.penalty_cost_us.add(penalty.as_micros());
        }
    }

    #[allow(clippy::too_many_arguments)] // internal; mirrors the public set() signature plus shard context
    pub fn set(
        &mut self,
        h: u64,
        key: &[u8],
        value: &[u8],
        ttl: Option<SimDuration>,
        explicit_penalty: Option<SimDuration>,
        flags: u32,
        now: SimTime,
        c: &ShardCounters,
    ) -> Result<(), CacheError> {
        let tick = self.tick(now);
        let penalty = self.penalty_for(h, explicit_penalty, now, c);
        // Replace any previous generation (also resolves collisions in
        // favour of the newest writer). A refused set therefore leaves
        // the key absent, never stale.
        if self.entries.contains_key(&h) {
            self.drop_entry(h, now, c);
        }
        ShardCounters::bump(&c.sets);
        // Geometry check first: an item no slab class can hold would
        // be refused by the policy anyway, but the caller deserves to
        // know that eviction can never help. Same byte rule as
        // `CacheConfig::class_of` returning `None`.
        let item_bytes = (key.len() + value.len()) as u64;
        let footprint = item_bytes + u64::from(self.cfg.item_overhead);
        if footprint > self.cfg.slab_bytes {
            ShardCounters::bump(&c.rejected);
            self.publish_storage_gauges(c);
            return Err(CacheError::ValueTooLarge {
                item_bytes: footprint,
                max_bytes: self.cfg.slab_bytes,
            });
        }
        let req =
            Request::set(now, h, key.len() as u32, value.len() as u32).with_penalty(penalty);
        self.policy.on_set(&req, tick);
        // Replay the policy's storage decisions (evictions, slab
        // grants, slab migrations) into the arena *before* writing the
        // new item: an eviction or transfer is exactly what frees the
        // slot the item lands in.
        self.apply_policy_events(c);
        if self.policy.cache().contains(h) {
            match self.store_bytes(h, key, value) {
                Some(loc) => {
                    ShardCounters::bump(&c.items);
                    ShardCounters::add(&c.live_bytes, item_bytes);
                    let band = self.cfg.band_of(penalty) as u8;
                    self.entries.insert(
                        h,
                        Entry {
                            loc,
                            expires: ttl.map(|d| now + d),
                            flags,
                            cas: self.serial,
                            band,
                        },
                    );
                    self.publish_storage_gauges(c);
                    Ok(())
                }
                None => {
                    // The arena disagreed with the ledger — impossible
                    // while the two are in lockstep (debug builds
                    // assert). Roll the policy back so store and
                    // ledger stay consistent, and refuse the set.
                    debug_assert!(false, "arena refused a ledger-approved insert");
                    let t = Tick { now, serial: self.serial };
                    self.policy.on_delete(&Request::delete(now, h, 0), t);
                    ShardCounters::bump(&c.rejected);
                    self.publish_storage_gauges(c);
                    Err(CacheError::CapacityExhausted { item_bytes })
                }
            }
        } else {
            ShardCounters::bump(&c.rejected);
            self.publish_storage_gauges(c);
            Err(CacheError::CapacityExhausted { item_bytes })
        }
    }

    /// Memcached `add`: stores only when the key is absent (or its
    /// previous generation expired). `Ok(false)` — the protocol's
    /// `NOT_STORED` — when a live entry already exists.
    #[allow(clippy::too_many_arguments)] // mirrors set() plus shard context
    pub fn add(
        &mut self,
        h: u64,
        key: &[u8],
        value: &[u8],
        ttl: Option<SimDuration>,
        explicit_penalty: Option<SimDuration>,
        flags: u32,
        now: SimTime,
        c: &ShardCounters,
    ) -> Result<bool, CacheError> {
        match self.entry_state(h, key, now) {
            EntryState::Live => Ok(false),
            // Absent, expired, or a colliding key: `set` already
            // resolves each of those in favour of the new writer.
            _ => self.set(h, key, value, ttl, explicit_penalty, flags, now, c).map(|()| true),
        }
    }

    /// Memcached `touch`: refreshes a live entry's TTL (`None` clears
    /// it) and promotes the key — a touched key is a used key. Returns
    /// whether the key was live.
    pub fn touch(
        &mut self,
        h: u64,
        key: &[u8],
        ttl: Option<SimDuration>,
        now: SimTime,
        c: &ShardCounters,
    ) -> bool {
        match self.entry_state(h, key, now) {
            EntryState::Live => {
                let tick = self.tick(now);
                let vlen = self
                    .entries
                    .get(&h)
                    .map_or(0, |e| self.stored_len(e).saturating_sub(key.len() as u64));
                let req = Request::get(now, h, key.len() as u32, vlen as u32);
                let out = self.policy.on_get(&req, tick);
                debug_assert!(out.hit, "policy lost a touched key");
                if let Some(e) = self.entries.get_mut(&h) {
                    e.expires = ttl.map(|d| now + d);
                }
                true
            }
            EntryState::Expired => {
                self.drop_entry(h, now, c);
                self.publish_storage_gauges(c);
                false
            }
            EntryState::Absent => false,
        }
    }

    /// Memcached `flush_all`: drops every entry, returning how many.
    /// Penalty estimates and probe windows survive — they are
    /// knowledge about keys, not about the flushed values.
    pub fn clear(&mut self, now: SimTime, c: &ShardCounters) -> u64 {
        let keys: Vec<u64> = self.entries.keys().copied().collect();
        let n = keys.len() as u64;
        for h in keys {
            self.drop_entry(h, now, c);
        }
        self.publish_storage_gauges(c);
        n
    }

    /// Writes `key ‖ value` into storage, returning where it landed.
    fn store_bytes(&mut self, h: u64, key: &[u8], value: &[u8]) -> Option<EntryLoc> {
        match &mut self.storage {
            Storage::Heap => Some(EntryLoc::Heap {
                key: Bytes::copy_from_slice(key),
                value: Bytes::copy_from_slice(value),
            }),
            Storage::Arena(arena) => {
                // The class the ledger stored the item under; identical
                // to `cfg.class_of(key, value)` but read back from the
                // policy so the two can never disagree.
                let class = self.policy.cache().peek(h)?.class as usize;
                arena.insert(class, h, key, value).ok().map(EntryLoc::Slot)
            }
        }
    }

    /// Replays the policy's recorded storage events into the arena and
    /// the entry index, in decision order: evicted keys leave the
    /// index and free their slots, grants carve fresh slabs, and slab
    /// moves compact + re-carve (repointing every relocated handle).
    fn apply_policy_events(&mut self, c: &ShardCounters) {
        let events = self.policy.take_events();
        if events.is_empty() {
            return;
        }
        for e in events {
            match e {
                PolicyEvent::Evicted { key, band, .. } => {
                    if let Some(entry) = self.entries.remove(&key) {
                        ShardCounters::bump(&c.evictions);
                        ShardCounters::sub(&c.items, 1);
                        ShardCounters::sub(&c.live_bytes, self.stored_len(&entry));
                        Self::release(&mut self.storage, &entry);
                        if let Some(m) = &self.metrics {
                            m.band(band as usize).evictions.inc();
                        }
                    } else {
                        debug_assert!(false, "policy evicted a key the store never held");
                    }
                }
                PolicyEvent::SlabGranted { class } => {
                    if let Storage::Arena(arena) = &mut self.storage {
                        let granted = arena.grant_slab(class as usize);
                        debug_assert!(granted.is_ok(), "slab grant drifted: {granted:?}");
                    }
                    if let Some(m) = &self.metrics {
                        m.slab_grants.inc();
                    }
                }
                PolicyEvent::SlabMoved { src_class, src_band, dst_class } => {
                    if let Storage::Arena(arena) = &mut self.storage {
                        let entries = &mut self.entries;
                        let t0 = self.metrics.is_some().then(Instant::now);
                        let moved = arena.transfer_slab(
                            src_class as usize,
                            dst_class as usize,
                            |hash, old, new| {
                                if let Some(entry) = entries.get_mut(&hash) {
                                    debug_assert!(
                                        matches!(entry.loc, EntryLoc::Slot(r) if r == old),
                                        "compaction moved a slot the index didn't own"
                                    );
                                    entry.loc = EntryLoc::Slot(new);
                                }
                            },
                        );
                        debug_assert!(moved.is_ok(), "slab transfer drifted: {moved:?}");
                        if let (Some(m), Some(t0)) = (&self.metrics, t0) {
                            m.slab_move_us.record(t0.elapsed().as_micros() as u64);
                        }
                    }
                    if let Some(m) = &self.metrics {
                        m.band(src_band as usize).slab_moves.inc();
                    }
                }
            }
        }
    }

    /// Publishes the arena's aggregate gauges to the shard counters so
    /// `stats()` stays lock-free. Cheap: a handful of atomic stores.
    fn publish_storage_gauges(&self, c: &ShardCounters) {
        if let Storage::Arena(arena) = &self.storage {
            let st = arena.stats();
            ShardCounters::set(&c.slabs_in_use, st.slabs);
            ShardCounters::set(&c.arena_resident_bytes, st.resident_bytes);
            ShardCounters::set(&c.arena_free_slots, st.free_slots);
            ShardCounters::set(&c.arena_slot_bytes, st.live_slot_bytes);
            ShardCounters::set(&c.slab_transfers, st.transfers);
            ShardCounters::set(&c.slot_moves, st.slot_moves);
        }
    }

    /// Detailed slab-arena accounting for probes and benchmarks, or
    /// `None` in heap-baseline mode. Walks the metadata arrays; meant
    /// to be called at reporting cadence, not per operation.
    pub fn slab_report(&self) -> Option<SlabReport> {
        let Storage::Arena(arena) = &self.storage else {
            return None;
        };
        let st = arena.stats();
        let mut occupancy_deciles = [0u64; 10];
        for fill in arena.slab_fills() {
            let decile =
                (fill.live * 10).checked_div(fill.capacity).map_or(0, |d| d.min(9) as usize);
            occupancy_deciles[decile] += 1;
        }
        Some(SlabReport {
            slab_bytes: st.slab_bytes,
            max_slabs: st.max_slabs,
            slabs: st.slabs,
            resident_bytes: st.resident_bytes,
            meta_bytes: st.meta_bytes,
            requested_bytes: st.live_item_bytes,
            slot_bytes: st.live_slot_bytes,
            free_slots: st.free_slots,
            live_items: st.live_items,
            transfers: st.transfers,
            slot_moves: st.slot_moves,
            occupancy_deciles,
            classes: arena
                .class_stats()
                .into_iter()
                .map(|cs| SlabClassReport {
                    class: cs.class,
                    slot_bytes: cs.slot_bytes,
                    slabs: cs.slabs,
                    live_slots: cs.live_slots,
                    free_slots: cs.free_slots,
                    live_bytes: cs.live_bytes,
                })
                .collect(),
        })
    }

    pub fn delete(&mut self, h: u64, key: &[u8], c: &ShardCounters) -> bool {
        match self.entries.get(&h) {
            Some(e) if self.key_matches(e, key) => {
                ShardCounters::bump(&c.deletes);
                let now = SimTime::ZERO; // recency is irrelevant for removal
                self.drop_entry(h, now, c);
                self.publish_storage_gauges(c);
                true
            }
            _ => false,
        }
    }

    pub fn sweep_expired(&mut self, now: SimTime, c: &ShardCounters) -> usize {
        let expired: Vec<u64> = self
            .entries
            .iter()
            .filter(|(_, e)| Self::expired(e, now))
            .map(|(&h, _)| h)
            .collect();
        for h in &expired {
            self.drop_entry(*h, now, c);
        }
        ShardCounters::add(&c.expired, expired.len() as u64);
        self.publish_storage_gauges(c);
        expired.len()
    }

    /// Applies a batch of deferred hit records, oldest first. Each
    /// record counts as one access (serial and PAMA value-window
    /// cadence match the inline design); keys evicted since the hit
    /// are skipped by the policy.
    pub fn apply_deferred(&mut self, hits: &[u64], now: SimTime, c: &ShardCounters) {
        self.serial += hits.len() as u64;
        let tick = Tick { now, serial: self.serial };
        self.policy.on_batch_access(hits, tick);
        ShardCounters::add(&c.deferred_hits, hits.len() as u64);
    }

    /// Cross-checks the byte store against the policy's accounting,
    /// and — in arena mode — the physical slab ledger against both:
    /// every live index entry must point at an allocated slot carved
    /// for the class the policy filed the item under, per-class slab
    /// counts must match the policy's, and inside the arena free-list
    /// plus live slots must cover every slab's capacity (the arena's
    /// own full-recount `check`).
    pub fn check_consistency(&self) -> Result<(), String> {
        if self.entries.len() != self.policy.cache().len() {
            return Err(format!(
                "store/policy divergence: {} entries vs {} policy items",
                self.entries.len(),
                self.policy.cache().len()
            ));
        }
        self.policy.cache().check_invariants()?;
        let Storage::Arena(arena) = &self.storage else {
            return Ok(());
        };
        arena.check()?;
        let st = arena.stats();
        if st.live_items != self.entries.len() as u64 {
            return Err(format!(
                "arena holds {} items but the index holds {}",
                st.live_items,
                self.entries.len()
            ));
        }
        for (&h, e) in &self.entries {
            let EntryLoc::Slot(r) = e.loc else {
                return Err(format!("entry {h:#x} has heap bytes in arena mode"));
            };
            let Some((slab_class, hash, key_len, val_len)) = arena.locate(r) else {
                return Err(format!("entry {h:#x} points at dead slot {r:?}"));
            };
            if hash != h {
                return Err(format!(
                    "slot {r:?} stores hash {hash:#x} but is indexed as {h:#x}"
                ));
            }
            let Some(meta) = self.policy.cache().peek(h) else {
                return Err(format!("entry {h:#x} missing from the policy ledger"));
            };
            if meta.class as usize != slab_class {
                return Err(format!(
                    "entry {h:#x}: ledger class {} but stored in a class-{slab_class} slab",
                    meta.class
                ));
            }
            if meta.key_size as usize != key_len || meta.value_size as usize != val_len {
                return Err(format!(
                    "entry {h:#x}: ledger sizes {}+{} but slot holds {key_len}+{val_len}",
                    meta.key_size, meta.value_size
                ));
            }
        }
        for class in 0..arena.num_classes() {
            let physical = arena.class_slabs(class);
            let ledger = self.policy.cache().class(class).slabs;
            if physical != ledger {
                return Err(format!(
                    "class {class}: {physical} physical slabs vs {ledger} in the ledger"
                ));
            }
        }
        Ok(())
    }
}

/// A shard plus its lock, deferred-hit log, and atomic counters — the
/// unit `PamaCache` holds one of per shard.
pub(crate) struct ShardCell {
    inner: RwLock<Shard>,
    log: AccessLog,
    counters: ShardCounters,
    /// Benchmark baseline: route every operation (GETs included)
    /// through the write lock with inline promotion, reproducing the
    /// pre-concurrency exclusive-Mutex design.
    exclusive: bool,
    /// Observability registry shared by every shard of the cache.
    /// `None` keeps the hot path free of even the sampling branch.
    metrics: Option<Arc<MetricsRegistry>>,
}

impl ShardCell {
    pub fn new(shard: Shard, exclusive: bool, metrics: Option<Arc<MetricsRegistry>>) -> Self {
        Self {
            inner: RwLock::new(shard),
            log: AccessLog::new(ACCESS_LOG_CAPACITY),
            counters: ShardCounters::default(),
            exclusive,
            metrics,
        }
    }

    /// Drains the log into the locked shard. Called with the write
    /// lock held, before any mutation, so deferred promotions are
    /// applied in recorded order ahead of the new operation.
    fn drain_into(&self, shard: &mut Shard, now: SimTime) {
        if self.log.is_empty() {
            return;
        }
        let mut buf = Vec::with_capacity(self.log.len() + 8);
        self.log.drain_into(&mut buf);
        if !buf.is_empty() {
            shard.apply_deferred(&buf, now, &self.counters);
        }
    }

    /// Unconditional drain (SET/DELETE/miss paths and explicit flush).
    pub fn flush(&self, now: SimTime) {
        let mut shard = self.inner.write();
        self.drain_into(&mut shard, now);
    }

    pub fn get(&self, h: u64, key: &[u8], now: SimTime) -> Option<CacheValue> {
        // Sampled latency timing (1 op in `LATENCY_SAMPLE`): two clock
        // reads per sampled op keep the measured overhead well inside
        // the <5% budget `repro obs` enforces.
        let timer = self
            .metrics
            .as_deref()
            .filter(|m| m.sample_latency(h))
            .map(|m| (m, Instant::now()));
        let result = self.get_inner(h, key, now);
        if let Some((m, t0)) = timer {
            let us = t0.elapsed().as_micros() as u64;
            match &result {
                Some(_) => m.hit_latency_us.record(us),
                None => m.miss_latency_us.record(us),
            }
        }
        result
    }

    fn get_inner(&self, h: u64, key: &[u8], now: SimTime) -> Option<CacheValue> {
        if !self.exclusive {
            let shard = self.inner.read();
            if let Some(value) = shard.read_hit(h, key, now) {
                ShardCounters::bump(&self.counters.hits);
                self.log.record(h);
                return Some(value);
            }
        }
        // Miss / collision / expiry — or exclusive mode: full path
        // under the write lock.
        let mut shard = self.inner.write();
        if !self.exclusive {
            self.drain_into(&mut shard, now);
        }
        shard.get_locked(h, key, now, &self.counters)
    }

    #[allow(clippy::too_many_arguments)] // mirrors the shard call it forwards
    pub fn set(
        &self,
        h: u64,
        key: &[u8],
        value: &[u8],
        ttl: Option<SimDuration>,
        explicit_penalty: Option<SimDuration>,
        flags: u32,
        now: SimTime,
    ) -> Result<(), CacheError> {
        let mut shard = self.inner.write();
        if !self.exclusive {
            self.drain_into(&mut shard, now);
        }
        shard.set(h, key, value, ttl, explicit_penalty, flags, now, &self.counters)
    }

    #[allow(clippy::too_many_arguments)] // mirrors the shard call it forwards
    pub fn add(
        &self,
        h: u64,
        key: &[u8],
        value: &[u8],
        ttl: Option<SimDuration>,
        explicit_penalty: Option<SimDuration>,
        flags: u32,
        now: SimTime,
    ) -> Result<bool, CacheError> {
        let mut shard = self.inner.write();
        if !self.exclusive {
            self.drain_into(&mut shard, now);
        }
        shard.add(h, key, value, ttl, explicit_penalty, flags, now, &self.counters)
    }

    pub fn touch(&self, h: u64, key: &[u8], ttl: Option<SimDuration>, now: SimTime) -> bool {
        let mut shard = self.inner.write();
        if !self.exclusive {
            self.drain_into(&mut shard, now);
        }
        shard.touch(h, key, ttl, now, &self.counters)
    }

    pub fn clear(&self, now: SimTime) -> u64 {
        let mut shard = self.inner.write();
        if !self.exclusive {
            self.drain_into(&mut shard, now);
        }
        shard.clear(now, &self.counters)
    }

    pub fn delete(&self, h: u64, key: &[u8], now: SimTime) -> bool {
        let mut shard = self.inner.write();
        if !self.exclusive {
            self.drain_into(&mut shard, now);
        }
        shard.delete(h, key, &self.counters)
    }

    pub fn contains(&self, h: u64, key: &[u8], now: SimTime) -> bool {
        let shard = self.inner.read();
        match shard.entry_state(h, key, now) {
            EntryState::Live => true,
            EntryState::Absent => false,
            EntryState::Expired => {
                drop(shard);
                let mut shard = self.inner.write();
                if !self.exclusive {
                    self.drain_into(&mut shard, now);
                }
                shard.expire_if_dead(h, key, now, &self.counters);
                false
            }
        }
    }

    pub fn sweep_expired(&self, now: SimTime) -> usize {
        let mut shard = self.inner.write();
        if !self.exclusive {
            self.drain_into(&mut shard, now);
        }
        shard.sweep_expired(now, &self.counters)
    }

    /// Batched GET for keys mapping to this shard: one read-lock pass
    /// serves every hit; a single write-lock pass (if needed) handles
    /// the misses.
    pub fn multi_get_group(
        &self,
        group: &[(usize, u64)],
        keys: &[&[u8]],
        out: &mut [Option<CacheValue>],
        now: SimTime,
    ) {
        if self.exclusive {
            let mut shard = self.inner.write();
            for &(i, h) in group {
                out[i] = shard.get_locked(h, keys[i], now, &self.counters);
            }
            return;
        }
        let mut misses: Vec<(usize, u64)> = Vec::new();
        {
            let shard = self.inner.read();
            for &(i, h) in group {
                match shard.read_hit(h, keys[i], now) {
                    Some(value) => {
                        ShardCounters::bump(&self.counters.hits);
                        self.log.record(h);
                        out[i] = Some(value);
                    }
                    None => misses.push((i, h)),
                }
            }
        }
        if !misses.is_empty() {
            let mut shard = self.inner.write();
            self.drain_into(&mut shard, now);
            for (i, h) in misses {
                out[i] = shard.get_locked(h, keys[i], now, &self.counters);
            }
        }
    }

    /// Batched SET for items mapping to this shard: one write-lock
    /// take for the whole group. Every item is attempted; the first
    /// failure (by input index — groups are built in input order) is
    /// reported back for [`crate::PamaCache::multi_set`] to surface.
    pub fn multi_set_group(
        &self,
        group: &[(usize, u64)],
        items: &[(&[u8], &[u8])],
        ttl: Option<SimDuration>,
        explicit_penalty: Option<SimDuration>,
        flags: u32,
        now: SimTime,
    ) -> Option<(usize, CacheError)> {
        let mut shard = self.inner.write();
        if !self.exclusive {
            self.drain_into(&mut shard, now);
        }
        let mut first_err = None;
        for &(i, h) in group {
            let (key, value) = items[i];
            if let Err(e) =
                shard.set(h, key, value, ttl, explicit_penalty, flags, now, &self.counters)
            {
                if first_err.is_none() {
                    first_err = Some((i, e));
                }
            }
        }
        first_err
    }

    pub fn stats(&self) -> crate::stats::CacheStats {
        let mut s = self.counters.snapshot();
        s.deferred_dropped = self.log.dropped();
        s
    }

    /// Detailed slab accounting (takes the read lock; `None` in heap
    /// mode).
    pub fn slab_report(&self) -> Option<SlabReport> {
        self.inner.read().slab_report()
    }

    /// Flushes, then cross-checks store vs policy accounting.
    pub fn check_consistency(&self, now: SimTime) -> Result<(), String> {
        let mut shard = self.inner.write();
        self.drain_into(&mut shard, now);
        shard.check_consistency()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard() -> Shard {
        let cfg = CacheConfig {
            total_bytes: 1 << 20,
            slab_bytes: 64 << 10,
            ..CacheConfig::default()
        };
        Shard::new(cfg, PamaConfig::default(), false)
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn live_penalty_probe_measures_gap() {
        let mut s = shard();
        let c = ShardCounters::default();
        // miss at t=100ms, refill at t=180ms → 80ms penalty measured
        assert!(s.get_locked(1, b"k", t(100), &c).is_none());
        s.set(1, b"k", b"v", None, None, 0, t(180), &c).unwrap();
        assert_eq!(s.estimates.get(&1).copied(), Some(SimDuration::from_millis(80)));
        let st = c.snapshot();
        assert_eq!(st.measured_penalties, 1);
        assert!((st.mean_measured_penalty_us - 80_000.0).abs() < 1.0);
        // The stored item's penalty band reflects the measurement.
        let meta: pama_core::cache::ItemMeta = s.policy.cache().peek(1).unwrap();
        assert_eq!(meta.penalty, SimDuration::from_millis(80));
    }

    #[test]
    fn explicit_penalty_wins_over_probe() {
        let mut s = shard();
        let c = ShardCounters::default();
        assert!(s.get_locked(2, b"k2", t(0), &c).is_none());
        s.set(2, b"k2", b"v", None, Some(SimDuration::from_secs(2)), 0, t(50), &c).unwrap();
        let meta = s.policy.cache().peek(2).unwrap();
        assert_eq!(meta.penalty, SimDuration::from_secs(2));
    }

    #[test]
    fn over_cap_gap_falls_back_to_default() {
        let mut s = shard();
        let c = ShardCounters::default();
        assert!(s.get_locked(3, b"k3", t(0), &c).is_none());
        s.set(3, b"k3", b"v", None, None, 0, t(10_000), &c).unwrap(); // 10 s gap > cap
        let meta = s.policy.cache().peek(3).unwrap();
        assert_eq!(meta.penalty, DEFAULT_PENALTY);
    }

    #[test]
    fn ttl_expiry_is_lazy_and_sweepable() {
        let mut s = shard();
        let c = ShardCounters::default();
        s.set(4, b"k4", b"v", Some(SimDuration::from_millis(100)), None, 0, t(0), &c).unwrap();
        assert!(matches!(s.entry_state(4, b"k4", t(50)), EntryState::Live));
        assert!(
            matches!(s.entry_state(4, b"k4", t(150)), EntryState::Expired),
            "expired entry still reported live"
        );
        s.expire_if_dead(4, b"k4", t(150), &c);
        assert!(matches!(s.entry_state(4, b"k4", t(150)), EntryState::Absent));
        // sweep path
        s.set(5, b"k5", b"v", Some(SimDuration::from_millis(10)), None, 0, t(200), &c).unwrap();
        assert_eq!(s.sweep_expired(t(500), &c), 1);
        assert_eq!(c.snapshot().expired, 1);
    }

    #[test]
    fn collision_resolves_to_newest_writer() {
        let mut s = shard();
        let c = ShardCounters::default();
        s.set(7, b"first", b"A", None, None, 0, t(0), &c).unwrap();
        // same hash, different key bytes: treated as miss, then overwritten
        assert!(s.get_locked(7, b"second", t(1), &c).is_none());
        s.set(7, b"second", b"B", None, None, 0, t(2), &c).unwrap();
        assert_eq!(
            s.get_locked(7, b"second", t(3), &c).map(|v| v.value).as_deref(),
            Some(&b"B"[..])
        );
        assert!(s.get_locked(7, b"first", t(4), &c).is_none());
        // collisions never reach the read-hit fast path either
        assert!(s.read_hit(7, b"first", t(5)).is_none());
    }

    #[test]
    fn policy_evictions_free_store_and_arena() {
        let mut s = shard();
        let c = ShardCounters::default();
        let v = vec![0u8; 30_000];
        for i in 0..200u64 {
            let _ = s.set(i, format!("key{i}").as_bytes(), &v, None, None, 0, t(i), &c);
        }
        let st = c.snapshot();
        assert!(st.items < 40, "1 MiB can't hold 200×30 KB: items {}", st.items);
        assert!(st.evictions > 0);
        // store and policy agree exactly, incremental counters included
        assert_eq!(st.items as usize, s.policy.cache().len());
        assert_eq!(st.items as usize, s.entries.len());
        s.check_consistency().unwrap();
    }

    #[test]
    fn deferred_hits_promote_like_inline_gets() {
        // Two shards with identical geometry: one promotes inline on
        // every GET, the other records hits and applies them in one
        // batch. After the drain, LRU order (and thus the eviction
        // victim) must match.
        let mut inline = shard();
        let mut deferred = shard();
        let ci = ShardCounters::default();
        let cd = ShardCounters::default();
        let v = vec![0u8; 100];
        for i in 0..8u64 {
            inline.set(i, format!("k{i}").as_bytes(), &v, None, None, 0, t(i), &ci).unwrap();
            deferred.set(i, format!("k{i}").as_bytes(), &v, None, None, 0, t(i), &cd).unwrap();
        }
        // Touch keys 0..4 (oldest first) — inline promotes immediately.
        for i in 0..4u64 {
            assert!(inline
                .get_locked(i, format!("k{i}").as_bytes(), t(100 + i), &ci)
                .is_some());
            assert!(deferred.read_hit(i, format!("k{i}").as_bytes(), t(100 + i)).is_some());
        }
        deferred.apply_deferred(&[0, 1, 2, 3], t(104), &cd);
        // Same serial consumed, same access count.
        assert_eq!(inline.serial, deferred.serial);
        // Same LRU state: evict pressure must pick the same victims.
        let fill = vec![0u8; 100];
        for i in 100..1200u64 {
            let _ = inline.set(
                i,
                format!("f{i}").as_bytes(),
                &fill,
                None,
                None,
                0,
                t(200 + i),
                &ci,
            );
            let _ = deferred.set(
                i,
                format!("f{i}").as_bytes(),
                &fill,
                None,
                None,
                0,
                t(200 + i),
                &cd,
            );
        }
        for i in 0..8u64 {
            assert_eq!(
                inline.policy.cache().contains(i),
                deferred.policy.cache().contains(i),
                "key {i} diverged between inline and deferred promotion"
            );
        }
        inline.check_consistency().unwrap();
        deferred.check_consistency().unwrap();
    }
}
