//! Minimal, dependency-free stand-in for `criterion`.
//!
//! The build environment has no crates.io access, so this vendors the
//! small API surface the workspace's benches use: [`Criterion`],
//! [`Criterion::benchmark_group`], `bench_function`, `Bencher::iter`,
//! [`Throughput`], [`black_box`], and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is a simple calibrated wall-clock loop (median of
//! `sample_size` samples) — adequate for coarse regression spotting,
//! not statistically rigorous like the real crate. Output goes to
//! stdout; there is no HTML report.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units processed per iteration, used to report rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the calibrated number of iterations, timing the whole batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level harness state.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup {name}");
        let sample_size = self.default_sample_size;
        BenchmarkGroup { _parent: self, sample_size, throughput: None }
    }

    /// Runs a standalone benchmark (its own single-entry group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let sample_size = self.default_sample_size;
        run_bench(name, sample_size, None, f);
        self
    }
}

/// A named set of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.sample_size, self.throughput, f);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    samples: usize,
    tp: Option<Throughput>,
    mut f: F,
) {
    // Calibrate: grow the iteration count until one batch takes ≳2ms,
    // so per-iteration timings are not dominated by timer overhead.
    let mut iters: u64 = 1;
    let mut b = Bencher { iters, elapsed: Duration::ZERO };
    loop {
        b.iters = iters;
        b.elapsed = Duration::ZERO;
        f(&mut b);
        if b.elapsed >= Duration::from_millis(2) || iters >= 1 << 24 {
            break;
        }
        iters = iters.saturating_mul(4);
    }

    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            b.iters = iters;
            b.elapsed = Duration::ZERO;
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("bench time is never NaN"));
    let median = per_iter[per_iter.len() / 2];

    let rate = match tp {
        Some(Throughput::Elements(n)) => format!("  {:>12.0} elem/s", n as f64 / median),
        Some(Throughput::Bytes(n)) => format!("  {:>12.0} B/s", n as f64 / median),
        None => String::new(),
    };
    println!("  {name:<28} {:>12}{rate}", fmt_time(median));
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            // `cargo test -q` runs bench binaries with --test; skip the
            // (slow) measurement loops there and during --list.
            if std::env::args().any(|a| a == "--test" || a == "--list") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.throughput(Throughput::Elements(1));
        g.bench_function("add", |b| b.iter(|| black_box(2u64) + black_box(3u64)));
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_and_reports() {
        benches();
    }

    #[test]
    fn time_formatting_covers_scales() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" µs"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }
}
