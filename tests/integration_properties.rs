//! Property-based integration tests: random op sequences against every
//! policy must preserve cache invariants and basic cache semantics
//! (reference-model checked).

use pama::core::cache::BaseCache;
use pama::core::config::{CacheConfig, Tick};
use pama::core::policy::{
    FacebookAge, LamaLite, MemcachedOriginal, Pama, Policy, Psa, Twemcache,
};
use pama::trace::{Op, Request};
use pama::util::{SimDuration, SimTime};
use proptest::prelude::*;
use std::collections::HashMap;

fn tiny_cache() -> CacheConfig {
    CacheConfig {
        total_bytes: 64 << 10, // 16 slabs
        slab_bytes: 4 << 10,
        min_slot: 64,
        ..CacheConfig::default()
    }
}

#[derive(Debug, Clone)]
struct OpSpec {
    op: Op,
    key: u64,
    value_size: u32,
    penalty_ms: u64,
}

fn op_strategy() -> impl Strategy<Value = OpSpec> {
    (
        prop_oneof![
            8 => Just(Op::Get),
            2 => Just(Op::Set),
            1 => Just(Op::Delete),
            1 => Just(Op::Replace),
        ],
        0u64..40,
        1u32..3500,
        1u64..5_000,
    )
        .prop_map(|(op, key, value_size, penalty_ms)| OpSpec {
            op,
            key,
            value_size,
            penalty_ms,
        })
}

fn drive(policy: &mut dyn Policy, ops: &[OpSpec]) {
    for (i, o) in ops.iter().enumerate() {
        let t = Tick { now: SimTime::from_micros(i as u64 * 13), serial: i as u64 };
        let req = Request {
            time: t.now,
            op: o.op,
            key: o.key,
            key_size: 16,
            value_size: if o.op == Op::Delete { 0 } else { o.value_size },
            penalty_us: o.penalty_ms * 1000,
        };
        match o.op {
            Op::Get => {
                policy.on_get(&req, t);
            }
            Op::Set => policy.on_set(&req, t),
            Op::Delete => policy.on_delete(&req, t),
            Op::Replace => policy.on_replace(&req, t),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_policies_preserve_invariants(ops in prop::collection::vec(op_strategy(), 1..400)) {
        let mk: Vec<(&str, Box<dyn Policy + Send>)> = vec![
            ("memcached", Box::new(MemcachedOriginal::new(tiny_cache()))),
            ("psa", Box::new(Psa::with_period(tiny_cache(), 7))),
            ("psa-unguarded", Box::new(Psa::unguarded(tiny_cache(), 7))),
            ("pama", Box::new(Pama::new(tiny_cache()))),
            ("pre-pama", Box::new(Pama::pre_pama(tiny_cache()))),
            ("facebook", Box::new(FacebookAge::with_period(tiny_cache(), 11))),
            ("twemcache", Box::new(Twemcache::new(tiny_cache()))),
            ("lama", Box::new(LamaLite::with_params(
                tiny_cache(),
                pama::core::policy::lama::LamaObjective::ServiceTime,
                50,
                4,
            ))),
        ];
        for (name, mut policy) in mk {
            drive(policy.as_mut(), &ops);
            policy
                .cache()
                .check_invariants()
                .unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn delete_really_deletes(ops in prop::collection::vec(op_strategy(), 1..200), key in 0u64..40) {
        let mut p = Pama::new(tiny_cache());
        drive(&mut p, &ops);
        let t = Tick { now: SimTime::from_millis(999), serial: 0 };
        p.on_delete(&Request::delete(t.now, key, 16), t);
        prop_assert!(!p.cache().contains(key));
    }

    #[test]
    fn get_after_fill_hits(key in 0u64..1000, vs in 1u32..3000, pen in 1u64..4000) {
        let mut p = Pama::new(tiny_cache());
        let t = Tick { now: SimTime::ZERO, serial: 0 };
        let req = Request::get(t.now, key, 16, vs)
            .with_penalty(SimDuration::from_millis(pen));
        let first = p.on_get(&req, t);
        prop_assert!(!first.hit);
        if first.filled {
            prop_assert!(p.on_get(&req, t).hit);
        }
    }

    #[test]
    fn resident_set_respects_semantics(ops in prop::collection::vec(op_strategy(), 1..300)) {
        // Reference model: the set of keys that *must* be absent
        // (deleted and never re-added). Presence is policy-dependent
        // (evictions), absence after DELETE is not.
        let mut p = MemcachedOriginal::new(tiny_cache());
        let mut deleted: HashMap<u64, bool> = HashMap::new();
        for (i, o) in ops.iter().enumerate() {
            let t = Tick { now: SimTime::from_micros(i as u64), serial: i as u64 };
            let req = Request {
                time: t.now,
                op: o.op,
                key: o.key,
                key_size: 16,
                value_size: o.value_size,
                penalty_us: o.penalty_ms * 1000,
            };
            match o.op {
                Op::Get => {
                    p.on_get(&req, t);
                    deleted.insert(o.key, false);
                }
                Op::Set => {
                    p.on_set(&req, t);
                    deleted.insert(o.key, false);
                }
                Op::Delete => {
                    p.on_delete(&req, t);
                    deleted.insert(o.key, true);
                }
                Op::Replace => {
                    p.on_replace(&req, t);
                }
            }
        }
        for (&k, &is_deleted) in &deleted {
            if is_deleted {
                prop_assert!(!p.cache().contains(k), "deleted key {k} still cached");
            }
        }
    }

    #[test]
    fn base_cache_matches_naive_byte_accounting(
        inserts in prop::collection::vec((0u64..500, 1u32..3500), 1..150)
    ) {
        let mut cache = BaseCache::new(tiny_cache(), 1);
        let mut live: HashMap<u64, u32> = HashMap::new();
        for &(key, vs) in &inserts {
            if cache.contains(key) {
                cache.remove(key);
                live.remove(&key);
            }
            let cfg = cache.cfg().clone();
            if let Some(class) = cfg.class_of(16, vs) {
                let meta = pama::core::cache::ItemMeta {
                    key,
                    key_size: 16,
                    value_size: vs,
                    class: class as u32,
                    ..Default::default()
                };
                if !matches!(cache.insert(meta), pama::core::cache::InsertOutcome::NoSpace) {
                    live.insert(key, vs);
                }
            }
        }
        prop_assert_eq!(cache.len(), live.len());
        let expect: u64 = live.iter().map(|(_, &v)| 16 + u64::from(v)).sum();
        prop_assert_eq!(cache.live_bytes(), expect);
        cache.check_invariants().unwrap();
    }
}
