//! Cross-crate integration: workloads → engine → metrics, for every
//! policy, with determinism and invariant checks.

use pama::core::config::{CacheConfig, EngineConfig};
use pama::core::engine::Engine;
use pama::core::metrics::RunResult;
use pama::core::policy::{
    FacebookAge, GlobalLru, LamaLite, MemcachedOriginal, Pama, PamaConfig, Policy, Psa,
    Twemcache,
};
use pama::workloads::Preset;

fn small_cache() -> CacheConfig {
    CacheConfig { total_bytes: 4 << 20, slab_bytes: 64 << 10, ..CacheConfig::default() }
}

fn all_policies(cache: &CacheConfig) -> Vec<Box<dyn Policy + Send>> {
    vec![
        Box::new(MemcachedOriginal::new(cache.clone())),
        Box::new(Psa::new(cache.clone())),
        Box::new(Psa::unguarded(cache.clone(), 500)),
        Box::new(Pama::pre_pama(cache.clone())),
        Box::new(Pama::new(cache.clone())),
        Box::new(Pama::with_config(
            cache.clone(),
            PamaConfig {
                membership: pama::core::segments::MembershipMode::Bloom { fpp: 0.01 },
                ..PamaConfig::default()
            },
        )),
        Box::new(FacebookAge::new(cache.clone())),
        Box::new(Twemcache::new(cache.clone())),
        Box::new(LamaLite::new(cache.clone())),
        Box::new(GlobalLru::new(cache.clone())),
    ]
}

fn run(policy: Box<dyn Policy + Send>, preset: Preset, n: usize, seed: u64) -> RunResult {
    let wl = preset.config(20_000, seed);
    let ecfg = EngineConfig { window_gets: 20_000, snapshot_allocations: true };
    Engine::run_to_result(policy, ecfg, wl.name.clone(), wl.build().take(n))
}

#[test]
fn every_policy_survives_every_preset() {
    let cache = small_cache();
    for preset in Preset::all() {
        for policy in all_policies(&cache) {
            let name = policy.name();
            let r = run(policy, preset, 60_000, 1);
            assert_eq!(r.total_requests, 60_000, "{name} on {preset:?}");
            assert!(r.total_gets > 0, "{name} on {preset:?} saw no GETs");
            assert!(
                r.hit_ratio() > 0.0 && r.hit_ratio() < 1.0,
                "{name} on {preset:?}: degenerate hit ratio {}",
                r.hit_ratio()
            );
        }
    }
}

#[test]
fn runs_are_deterministic() {
    let cache = small_cache();
    for mk in [
        || -> Box<dyn Policy + Send> { Box::new(Pama::new(small_cache())) },
        || -> Box<dyn Policy + Send> { Box::new(Psa::new(small_cache())) },
        || -> Box<dyn Policy + Send> { Box::new(Twemcache::new(small_cache())) },
        || -> Box<dyn Policy + Send> { Box::new(LamaLite::new(small_cache())) },
    ] {
        let a = run(mk(), Preset::Etc, 120_000, 9);
        let b = run(mk(), Preset::Etc, 120_000, 9);
        assert_eq!(a, b, "nondeterministic run for {}", a.policy);
    }
    let _ = cache;
}

#[test]
fn cache_invariants_hold_after_long_runs() {
    let cache = small_cache();
    for policy in all_policies(&cache) {
        let name = policy.name();
        let wl = Preset::App.config(30_000, 3);
        let ecfg = EngineConfig { window_gets: 50_000, snapshot_allocations: false };
        let mut engine = Engine::new(policy, ecfg).with_workload_label("app");
        engine.run(wl.build().take(150_000));
        engine.policy().cache().check_invariants().unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn different_seeds_produce_different_results() {
    let a = run(Box::new(Pama::new(small_cache())), Preset::Etc, 100_000, 1);
    let b = run(Box::new(Pama::new(small_cache())), Preset::Etc, 100_000, 2);
    assert_ne!(a.total_hits, b.total_hits);
}

#[test]
fn run_results_serde_roundtrip() {
    let r = run(Box::new(Pama::new(small_cache())), Preset::Etc, 60_000, 5);
    let json = r.to_json().to_string_compact();
    let back = RunResult::from_json(&pama::util::json::Json::parse(&json).unwrap()).unwrap();
    assert_eq!(r, back);
}

#[test]
fn demand_fill_off_still_serves_sets() {
    let mut cache = small_cache();
    cache.demand_fill = false;
    let wl = Preset::Var.config(5_000, 4); // SET-heavy
    let ecfg = EngineConfig::default();
    let r = Engine::run_to_result(Pama::new(cache), ecfg, "var", wl.build().take(80_000));
    // Without demand fill, hits only come from SET-installed items;
    // VAR is SET-dominated so there must be plenty.
    assert!(r.hit_ratio() > 0.1, "hit ratio {}", r.hit_ratio());
}

#[test]
fn larger_cache_never_hurts_pama_much() {
    let mut sizes = vec![];
    for mb in [2u64, 4, 8] {
        let cache = CacheConfig {
            total_bytes: mb << 20,
            slab_bytes: 64 << 10,
            ..CacheConfig::default()
        };
        let r = run(Box::new(Pama::new(cache)), Preset::Etc, 150_000, 6);
        sizes.push(r.hit_ratio());
    }
    assert!(
        sizes.windows(2).all(|w| w[1] >= w[0] - 0.02),
        "hit ratio not monotone-ish in cache size: {sizes:?}"
    );
}

#[test]
fn windows_partition_the_gets() {
    let r = run(Box::new(MemcachedOriginal::new(small_cache())), Preset::Etc, 90_000, 7);
    let sum: u64 = r.windows.iter().map(|w| w.gets).sum();
    assert_eq!(sum, r.total_gets);
    let hits: u64 = r.windows.iter().map(|w| w.hits).sum();
    assert_eq!(hits, r.total_hits);
    let svc: u64 = r.windows.iter().map(|w| w.service_us_sum).sum();
    assert_eq!(svc, r.total_service_us);
}
