//! Writing your own allocation policy against the library's substrate.
//!
//! This example implements **SLFU-ish**: a deliberately simple policy
//! that reallocates a slab every N misses from the class with the
//! fewest window hits per slab to the class with the most window
//! misses — a strawman between PSA and Twemcache — and races it
//! against PAMA. The point is the API surface: [`BaseCache`] gives a
//! custom policy exact slab/queue accounting, eviction, and migration
//! primitives, and the [`Policy`] trait plugs it into the engine,
//! metrics, and harness unchanged.
//!
//! ```text
//! cargo run --release --example custom_policy
//! ```

use pama::core::cache::{BaseCache, InsertOutcome};
use pama::core::config::{CacheConfig, EngineConfig, Tick};
use pama::core::engine::Engine;
use pama::core::policy::{meta_for, GetOutcome, Pama, Policy};
use pama::util::table::{fnum, Table};
use pama::workloads::Preset;
use pama_trace::Request;

/// The custom policy: hits-per-slab vs misses, rebalanced every `N`
/// misses.
struct HitDensity {
    cache: BaseCache,
    hits: Vec<u64>,
    misses: Vec<u64>,
    misses_since: u64,
    period: u64,
}

impl HitDensity {
    fn new(cfg: CacheConfig) -> Self {
        let nc = cfg.num_classes();
        Self {
            cache: BaseCache::new(cfg, 1),
            hits: vec![0; nc],
            misses: vec![0; nc],
            misses_since: 0,
            period: 2000,
        }
    }

    fn maybe_rebalance(&mut self) {
        if self.misses_since < self.period {
            return;
        }
        self.misses_since = 0;
        let Some(dst) = (0..self.misses.len()).max_by_key(|&c| self.misses[c]) else {
            return;
        };
        let src = (0..self.hits.len())
            .filter(|&c| c != dst && self.cache.class(c).slabs > 1)
            .min_by(|&a, &b| {
                let da = self.hits[a] as f64 / self.cache.class(a).slabs as f64;
                let db = self.hits[b] as f64 / self.cache.class(b).slabs as f64;
                da.partial_cmp(&db).unwrap()
            });
        if let Some(src) = src {
            self.cache.migrate_slab(src, 0, dst, |_| {});
        }
        self.hits.fill(0);
        self.misses.fill(0);
    }
}

impl Policy for HitDensity {
    fn name(&self) -> String {
        format!("hit-density(N={})", self.period)
    }

    fn on_get(&mut self, req: &Request, tick: Tick) -> GetOutcome {
        let class = self.cache.cfg().class_of(req.key_size, req.value_size);
        if self.cache.touch(req.key, tick.now).is_some() {
            if let Some(c) = class {
                self.hits[c] += 1;
            }
            return GetOutcome::HIT;
        }
        if let Some(c) = class {
            self.misses[c] += 1;
            self.misses_since += 1;
            self.maybe_rebalance();
        }
        let mut filled = false;
        if self.cache.cfg().demand_fill {
            if let Some(meta) = meta_for(self.cache.cfg(), req, tick, false) {
                let c = meta.class as usize;
                filled = match self.cache.insert(meta) {
                    InsertOutcome::NoSpace => {
                        self.cache.evict_tail(c, 0).is_some()
                            && !matches!(self.cache.insert(meta), InsertOutcome::NoSpace)
                    }
                    _ => true,
                };
            }
        }
        GetOutcome { hit: false, filled }
    }

    fn on_set(&mut self, req: &Request, tick: Tick) {
        if let Some(meta) = meta_for(self.cache.cfg(), req, tick, false) {
            if self.cache.peek(meta.key).map(|m| m.class) == Some(meta.class) {
                self.cache.update_in_place(meta);
                return;
            }
            self.cache.remove(meta.key);
            let c = meta.class as usize;
            if matches!(self.cache.insert(meta), InsertOutcome::NoSpace)
                && self.cache.evict_tail(c, 0).is_some()
            {
                let _ = self.cache.insert(meta);
            }
        }
    }

    fn on_delete(&mut self, req: &Request, _tick: Tick) {
        self.cache.remove(req.key);
    }

    fn cache(&self) -> &BaseCache {
        &self.cache
    }
}

fn main() {
    let cache =
        CacheConfig { total_bytes: 32 << 20, slab_bytes: 256 << 10, ..CacheConfig::default() };
    let workload = Preset::Etc.config(120_000, 5);
    let ecfg = EngineConfig { window_gets: 100_000, snapshot_allocations: false };
    let requests = 1_200_000;

    let custom = Engine::run_to_result(
        HitDensity::new(cache.clone()),
        ecfg.clone(),
        workload.name.clone(),
        workload.build().take(requests),
    );
    let pama = Engine::run_to_result(
        Pama::new(cache),
        ecfg,
        workload.name.clone(),
        workload.build().take(requests),
    );

    let mut t = Table::new(vec!["scheme", "hit%", "avg svc (ms)"]);
    for r in [&custom, &pama] {
        t.row(vec![
            r.policy.clone(),
            fnum(r.hit_ratio() * 100.0, 2),
            fnum(r.avg_service().as_secs_f64() * 1e3, 2),
        ]);
    }
    print!("{}", t.render());
    println!("\nSame engine, same metrics, ~100 lines for a brand-new policy.");
}
