//! Scheme shootout: every allocation policy in the library on the same
//! workload and cache, side by side — the paper's Figs. 5–6 comparison
//! plus the §II schemes and the references, in one table.
//!
//! ```text
//! cargo run --release --example scheme_shootout [etc|app|usr|sys|var] [requests]
//! ```

use pama::core::config::{CacheConfig, EngineConfig};
use pama::core::engine::Engine;
use pama::core::policy::{
    FacebookAge, GlobalLru, LamaLite, MemcachedOriginal, Pama, Policy, Psa, Twemcache,
};
use pama::util::table::{fnum, Table};
use pama::workloads::Preset;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let preset = args.first().and_then(|s| Preset::from_name(s)).unwrap_or(Preset::Etc);
    let requests: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1_500_000);

    let cache =
        CacheConfig { total_bytes: 48 << 20, slab_bytes: 256 << 10, ..CacheConfig::default() };
    let workload = preset.config(150_000, 7);
    let ecfg = EngineConfig { window_gets: 100_000, snapshot_allocations: false };

    println!(
        "workload {} · cache {} MiB · {} requests\n",
        workload.name,
        cache.total_bytes >> 20,
        requests
    );

    let policies: Vec<Box<dyn Policy + Send>> = vec![
        Box::new(MemcachedOriginal::new(cache.clone())),
        Box::new(Psa::new(cache.clone())),
        Box::new(Pama::pre_pama(cache.clone())),
        Box::new(Pama::new(cache.clone())),
        Box::new(FacebookAge::new(cache.clone())),
        Box::new(Twemcache::new(cache.clone())),
        Box::new(LamaLite::new(cache.clone())),
        Box::new(GlobalLru::new(cache.clone())),
    ];

    let mut table = Table::new(vec!["scheme", "hit%", "avg svc (ms)", "svc vs memcached"]);
    let mut memcached_svc = None;
    for policy in policies {
        let name = policy.name();
        let result = Engine::run_to_result(
            policy,
            ecfg.clone(),
            workload.name.clone(),
            workload.build().take(requests),
        );
        let svc_ms = result.avg_service().as_secs_f64() * 1e3;
        if memcached_svc.is_none() {
            memcached_svc = Some(svc_ms);
        }
        table.row(vec![
            name,
            fnum(result.hit_ratio() * 100.0, 2),
            fnum(svc_ms, 2),
            format!("{:+.1}%", (svc_ms / memcached_svc.unwrap() - 1.0) * 100.0),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nLower service time is the paper's headline metric; note how the\n\
         hit-ratio winner (pre-PAMA / LAMA-lite) and the service-time winner\n\
         (PAMA) are different schemes."
    );
}
