//! Cold-burst resilience demo (the paper's §IV-C study, Fig. 9).
//!
//! Injects a flood of never-again-referenced items — 25% of the cache,
//! confined to three size classes — into a steady ETC-like run and
//! prints how PSA and PAMA ride it out, window by window.
//!
//! ```text
//! cargo run --release --example cold_burst
//! ```

use pama::core::config::{CacheConfig, EngineConfig};
use pama::core::engine::Engine;
use pama::core::metrics::RunResult;
use pama::core::policy::{Pama, Policy, Psa};
use pama::util::table::{fnum, sparkline, Table};
use pama::util::SimDuration;
use pama::workloads::burst::ColdBurst;
use pama::workloads::dist::PenaltyModel;
use pama::workloads::Preset;

fn run(policy: Box<dyn Policy + Send>, with_burst: bool) -> RunResult {
    let requests = 2_000_000;
    let mut wl = Preset::Etc.config(150_000, 11);
    wl.hot_rotation = None; // keep the burst the only disturbance
    wl.diurnal = None;
    let base = wl.generate(requests);
    let trace = if with_burst {
        let burst = ColdBurst {
            total_bytes: (48u64 << 20) / 4,
            item_lo: 600,
            item_hi: 4600,
            key_size: 24,
            penalty: PenaltyModel::LogNormal {
                median: SimDuration::from_millis(8),
                sigma: 0.8,
                lo: SimDuration::from_millis(1),
                hi: SimDuration::from_secs(5),
            },
            seed: 99,
            as_gets: true,
        };
        burst.inject(&base, requests / 10)
    } else {
        base
    };
    let ecfg = EngineConfig { window_gets: 50_000, snapshot_allocations: false };
    Engine::run_to_result(policy, ecfg, "etc-like", trace)
}

fn main() {
    let cache =
        CacheConfig { total_bytes: 48 << 20, slab_bytes: 256 << 10, ..CacheConfig::default() };

    println!("running PSA and PAMA, each with and without the burst...\n");
    let psa_ctl = run(Box::new(Psa::new(cache.clone())), false);
    let psa_b = run(Box::new(Psa::new(cache.clone())), true);
    let pama_ctl = run(Box::new(Pama::new(cache.clone())), false);
    let pama_b = run(Box::new(Pama::new(cache)), true);

    let mut table = Table::new(vec!["run", "hit%", "avg svc (ms)", "hit-ratio timeline"]);
    for (name, r) in [
        ("psa control", &psa_ctl),
        ("psa + burst", &psa_b),
        ("pama control", &pama_ctl),
        ("pama + burst", &pama_b),
    ] {
        table.row(vec![
            name.to_string(),
            fnum(r.hit_ratio() * 100.0, 2),
            fnum(r.avg_service().as_secs_f64() * 1e3, 2),
            sparkline(&r.hit_ratio_series()),
        ]);
    }
    print!("{}", table.render());

    let dip = |b: &RunResult, c: &RunResult| {
        b.hit_ratio_series()
            .iter()
            .zip(c.hit_ratio_series())
            .map(|(b, c)| (c - b).max(0.0))
            .fold(0.0, f64::max)
    };
    println!(
        "\nworst single-window hit dip vs control: psa {:.2} pts, pama {:.2} pts",
        dip(&psa_b, &psa_ctl) * 100.0,
        dip(&pama_b, &pama_ctl) * 100.0
    );
    println!(
        "service-time cost of the burst:          psa {:+.2} ms, pama {:+.2} ms",
        (psa_b.avg_service().as_secs_f64() - psa_ctl.avg_service().as_secs_f64()) * 1e3,
        (pama_b.avg_service().as_secs_f64() - pama_ctl.avg_service().as_secs_f64()) * 1e3,
    );
}
