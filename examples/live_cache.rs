//! The release artifact in action: `pama-kv`'s embeddable cache with a
//! simulated back end whose regeneration costs vary per key class.
//!
//! The cache measures each key's miss→set gap live (the paper's
//! penalty estimator running online) and the PAMA allocator uses those
//! measurements to decide what to evict — watch the mean measured
//! penalty and the hit ratio in the stats.
//!
//! ```text
//! cargo run --release --example live_cache
//! ```

use pama::kv::{CacheBuilder, SetOptions};
use pama::util::hash::hash_u64;
use pama::util::{Rng, SimDuration, Xoshiro256StarStar};
use std::time::Duration;

/// A pretend back end: "cheap" keys take ~1 ms to recompute, "costly"
/// keys ~40 ms (kept small so the demo finishes quickly; real back
/// ends span ms…seconds).
fn backend_fetch(key: &str) -> (Vec<u8>, Duration) {
    let costly = key.starts_with("report:");
    let work = if costly { Duration::from_millis(40) } else { Duration::from_millis(1) };
    std::thread::sleep(work);
    (format!("value-of-{key}").into_bytes(), work)
}

fn main() {
    let cache = CacheBuilder::new()
        .total_bytes(256 << 10) // deliberately tiny: force evictions
        .slab_bytes(16 << 10)
        .shards(1)
        .build();

    let mut rng = Xoshiro256StarStar::from_seed(7);
    let mut backend_time = Duration::ZERO;

    // 60% of traffic goes to 120 cheap keys, 40% to 16 costly reports;
    // together they overflow the cache, so the allocator must choose.
    for i in 0..1_500u32 {
        let key = if rng.gen_bool(0.6) {
            format!("user:{}", hash_u64(u64::from(i), 1) % 120)
        } else {
            format!("report:{}", hash_u64(u64::from(i), 2) % 16)
        };
        if cache.get(key.as_bytes()).is_none() {
            let (value, work) = backend_fetch(&key);
            backend_time += work;
            // pad values so capacity pressure is real
            let mut padded = value;
            padded.resize(3_000, b'.');
            let _ = cache.set(
                key.as_bytes(),
                &padded,
                &SetOptions::new().ttl(SimDuration::from_secs(60)),
            );
        }
    }

    let s = cache.report().cache;
    println!("requests        : {}", s.hits + s.misses);
    println!("hit ratio       : {:.1}%", s.hit_ratio() * 100.0);
    println!("items / bytes   : {} / {} KiB", s.items, s.live_bytes >> 10);
    println!("evictions       : {}", s.evictions);
    println!(
        "live estimator  : {} samples, mean {:.1} ms",
        s.measured_penalties,
        s.mean_measured_penalty_us / 1e3
    );
    println!("back-end time   : {:.2?} total", backend_time);
    println!();
    println!(
        "The allocator learned which keys are expensive to regenerate from\n\
         the measured miss→set gaps alone — no cost hints were supplied."
    );
}
