//! Quickstart: run PAMA against a synthetic ETC-like workload and
//! print per-window hit ratio and average service time.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pama::core::config::{CacheConfig, EngineConfig};
use pama::core::engine::Engine;
use pama::core::policy::Pama;
use pama::util::table::{fnum, Table};
use pama::workloads::Preset;

fn main() {
    // 1. A cache: 32 MiB of 256 KiB slabs, 64 B base slot, the paper's
    //    five penalty bands, demand-fill on GET misses.
    let cache =
        CacheConfig { total_bytes: 32 << 20, slab_bytes: 256 << 10, ..CacheConfig::default() };

    // 2. A workload: the ETC-like preset (Zipf popularity, mostly tiny
    //    values, heavy DELETE share, ms-to-seconds miss penalties).
    let workload = Preset::Etc.config(/* keys */ 120_000, /* seed */ 42);

    // 3. Drive one million requests through PAMA.
    let engine_cfg = EngineConfig { window_gets: 100_000, snapshot_allocations: true };
    let result = Engine::run_to_result(
        Pama::new(cache),
        engine_cfg,
        workload.name.clone(),
        workload.build().take(1_000_000),
    );

    // 4. Report.
    let mut table = Table::new(vec!["window", "hit%", "avg service (ms)", "uncached fills"]);
    for w in &result.windows {
        table.row(vec![
            w.window.to_string(),
            fnum(w.hit_ratio() * 100.0, 2),
            fnum(w.avg_service().as_secs_f64() * 1e3, 2),
            w.uncached_fills.to_string(),
        ]);
    }
    println!("policy: {}   workload: {}", result.policy, result.workload);
    print!("{}", table.render());
    println!(
        "overall: hit {:.2}%  avg service {:.2} ms over {} GETs",
        result.hit_ratio() * 100.0,
        result.avg_service().as_secs_f64() * 1e3,
        result.total_gets
    );
}
