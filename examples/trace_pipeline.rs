//! Trace tooling tour: generate a workload, write/read both trace
//! formats, run the paper's miss-penalty estimator, and summarise —
//! the full `pama-trace` substrate in one pass.
//!
//! ```text
//! cargo run --release --example trace_pipeline [out_dir]
//! ```

use pama::trace::codec;
use pama::trace::stats::{estimate_zipf_alpha, popularity_profile};
use pama::trace::{Op, PenaltyEstimator, Request, Trace, TraceSummary};
use pama::util::FastSet;
use pama::workloads::Preset;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out: PathBuf = std::env::args().nth(1).unwrap_or_else(|| "results".into()).into();
    std::fs::create_dir_all(&out)?;

    // 1. Generate an APP-like trace.
    let workload = Preset::App.config(80_000, 3);
    let trace = workload.generate(300_000);
    println!("generated {} requests of {}", trace.len(), workload.name);

    // 2. Summarise it.
    let s = TraceSummary::compute(&trace);
    println!(
        "  GETs {:.1}%  unique keys {}  mean item {:.0} B  cold GETs {:.1}%",
        s.get_fraction() * 100.0,
        s.unique_keys,
        s.mean_item_bytes(),
        s.cold_get_fraction() * 100.0
    );
    let profile = popularity_profile(&trace);
    if let Some(alpha) = estimate_zipf_alpha(&profile, 200) {
        println!("  estimated Zipf exponent over the head: {alpha:.2}");
    }

    // 3. Round-trip through both on-disk formats.
    let bin_path = out.join("app_sample.trace");
    codec::write_binary(&trace, &mut BufWriter::new(File::create(&bin_path)?))?;
    let back = codec::read_binary(&mut BufReader::new(File::open(&bin_path)?))?;
    assert_eq!(trace, back);
    let bin_bytes = std::fs::metadata(&bin_path)?.len();

    let jsonl_path = out.join("app_sample.jsonl");
    codec::write_jsonl(&trace, &mut BufWriter::new(File::create(&jsonl_path)?))?;
    let back2 = codec::read_jsonl(&mut BufReader::new(File::open(&jsonl_path)?))?;
    assert_eq!(trace, back2);
    let jsonl_bytes = std::fs::metadata(&jsonl_path)?.len();
    println!(
        "  codecs agree; binary {:.1} MiB vs jsonl {:.1} MiB ({}x)",
        bin_bytes as f64 / (1 << 20) as f64,
        jsonl_bytes as f64 / (1 << 20) as f64,
        jsonl_bytes / bin_bytes.max(1)
    );

    // 4. The paper's penalty estimation: strip the ground-truth
    //    penalties, synthesise the miss→SET pairs a production trace
    //    would contain, and infer penalties from the gaps.
    let mut seen: FastSet<u64> = FastSet::default();
    let mut refills: Vec<Request> = Vec::new();
    for r in &trace {
        if r.op == Op::Get && seen.insert(r.key) {
            if let Some(p) = r.penalty() {
                let mut set = Request::set(r.time + p, r.key, r.key_size, r.value_size);
                set.penalty_us = 0;
                refills.push(set);
            }
        }
    }
    refills.sort_by_key(|r| r.time);
    let mut stripped = trace.clone();
    for r in &mut stripped.requests {
        r.penalty_us = 0;
    }
    let client_view = pama::trace::transform::merge(&stripped, &Trace::from_requests(refills));

    let mut est = PenaltyEstimator::new();
    est.observe_trace(&client_view);
    println!(
        "  estimator: {} samples accepted, {} over the 5 s cap, {} cancelled",
        est.accepted(),
        est.discarded_over_cap(),
        est.cancelled()
    );
    let map = est.finish();

    // 5. Compare inferred penalties against ground truth.
    let mut checked = 0u64;
    let mut exact = 0u64;
    let mut seen2: FastSet<u64> = FastSet::default();
    for r in &trace {
        if r.op == Op::Get && seen2.insert(r.key) && map.has_estimate(r.key) {
            checked += 1;
            if Some(map.penalty(r.key)) == r.penalty() {
                exact += 1;
            }
        }
    }
    println!(
        "  ground truth recovered exactly for {exact}/{checked} estimated keys \
         ({:.1}%)",
        exact as f64 / checked.max(1) as f64 * 100.0
    );
    Ok(())
}
